//! In-context example selection (§3.3).
//!
//! Two strategies, as evaluated in the paper:
//!
//! * **Class-balanced**: ten validation examples balanced across classes,
//!   chosen once per run. The paper's authors annotate their keywords and
//!   chain-of-thought by hand; here the "human annotator" is an oracle that
//!   reads the dataset's generative model (see `Exemplar::oracle`).
//! * **KATE** (Liu et al. 2021): the validation examples closest to the
//!   query in embedding space. Hand-annotation is impractical for varying
//!   neighbours, so — like the paper — the LLM itself generates the
//!   keywords and reasoning for each selected (pre-labeled) example, and
//!   the annotations are cached.

use crate::observe::{self, RunObserver};
use crate::parse::parse_response;
use crate::prompt;
use datasculpt_data::{Instance, TextDataset};
use datasculpt_llm::{ChatModel, LlmError, UsageLedger};
use datasculpt_text::embed::top_k_similar;
use datasculpt_text::rng::derive_seed;
use datasculpt_text::{Embedder, FeatureMatrix, HashedTfIdf, RandomProjection};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// One annotated in-context example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// The example text as rendered in the prompt.
    pub text: String,
    /// Indicative keywords.
    pub keywords: Vec<String>,
    /// Ground-truth label.
    pub label: usize,
    /// Optional chain-of-thought justification.
    pub explanation: Option<String>,
}

impl Exemplar {
    /// Simulate the paper's *manual* exemplar annotation: a domain expert
    /// picks the keywords in the text that are most indicative of its
    /// class, with a one-sentence justification.
    ///
    /// Returns `None` for an unlabeled instance (nothing to annotate).
    pub fn oracle(instance: &Instance, dataset: &TextDataset) -> Option<Exemplar> {
        let label = instance.label?;
        let tokens = instance.match_tokens();
        let mut grams = datasculpt_text::extract_ngrams(tokens, 3);
        grams.sort_unstable();
        grams.dedup();
        let mut scored: Vec<(String, f64)> = grams
            .into_iter()
            .filter_map(|g| {
                let probs = dataset.generative.affinity(&g)?;
                let own = probs.get(label).copied().unwrap_or(0.0);
                let other = probs
                    .iter()
                    .enumerate()
                    .filter(|(c, _)| *c != label)
                    .map(|(_, p)| *p)
                    .fold(0.0f64, f64::max);
                (own > other).then_some((g, own))
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        let keywords: Vec<String> = scored.into_iter().take(2).map(|(g, _)| g).collect();
        let explanation = if keywords.is_empty() {
            format!("no single phrase is decisive, but overall the passage reads as class {label}.")
        } else {
            format!(
                "the passage mentions {}, which indicates class {label}.",
                keywords.join(" and ")
            )
        };
        Some(Exemplar {
            text: instance.prompt_text(),
            keywords,
            label,
            explanation: Some(explanation),
        })
    }
}

/// Strategy for picking in-context examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IclStrategy {
    /// Random class-balanced examples, fixed for the whole run.
    ClassBalanced,
    /// Nearest neighbours of the query in embedding space (KATE).
    Kate,
}

/// Strategy-specific selector state, built once per run.
enum SelectorState {
    /// Fixed oracle-annotated exemplars.
    Balanced(Vec<Exemplar>),
    /// Embedded validation split for nearest-neighbour lookup.
    Kate {
        // Boxed: the arena-backed embedder dwarfs the Balanced variant.
        embedder: Box<RandomProjection>,
        valid_embeddings: FeatureMatrix,
    },
}

/// Stateful exemplar selector.
pub struct IclSelector {
    strategy: IclStrategy,
    n_icl: usize,
    state: SelectorState,
    kate_cache: BTreeMap<usize, Exemplar>,
}

impl IclSelector {
    /// Build a selector. For class-balanced selection the exemplars are
    /// drawn (and oracle-annotated) immediately; for KATE the validation
    /// split is embedded up front and annotations are lazy.
    pub fn new(dataset: &TextDataset, strategy: IclStrategy, n_icl: usize, seed: u64) -> Self {
        let state = match strategy {
            IclStrategy::ClassBalanced => {
                let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0x1C1));
                let n_classes = dataset.n_classes();
                let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
                for (i, inst) in dataset.valid.iter().enumerate() {
                    if let Some(bucket) = inst.label.and_then(|y| by_class.get_mut(y)) {
                        bucket.push(i);
                    }
                }
                for c in &mut by_class {
                    c.shuffle(&mut rng);
                }
                let mut balanced = Vec::new();
                let mut round = 0usize;
                while balanced.len() < n_icl {
                    let mut progressed = false;
                    for class in by_class.iter() {
                        if balanced.len() >= n_icl {
                            break;
                        }
                        if let Some(&idx) = class.get(round) {
                            if let Some(ex) = dataset
                                .valid
                                .instances
                                .get(idx)
                                .and_then(|inst| Exemplar::oracle(inst, dataset))
                            {
                                balanced.push(ex);
                                progressed = true;
                            }
                        }
                    }
                    if !progressed {
                        break; // validation split exhausted
                    }
                    round += 1;
                }
                SelectorState::Balanced(balanced)
            }
            IclStrategy::Kate => {
                let mut tfidf = HashedTfIdf::new(2048, 1);
                tfidf.fit(dataset.valid.iter().map(|i| i.tokens.as_slice()));
                let emb = RandomProjection::new(tfidf, 64, derive_seed(seed, 0x4A7E));
                let matrix = emb.embed_batch(dataset.valid.iter().map(|i| i.tokens.as_slice()));
                SelectorState::Kate {
                    embedder: Box::new(emb),
                    valid_embeddings: matrix,
                }
            }
        };
        Self {
            strategy,
            n_icl,
            state,
            kate_cache: BTreeMap::new(),
        }
    }

    /// The strategy in force.
    pub fn strategy(&self) -> IclStrategy {
        self.strategy
    }

    /// Number of KATE annotations cached so far.
    pub fn cached_annotations(&self) -> usize {
        self.kate_cache.len()
    }

    /// Select exemplars for a query instance. KATE may call the LLM to
    /// annotate newly selected examples (token usage is recorded in the
    /// ledger and mirrored to `obs`), so the whole selection is fallible.
    pub fn select<M: ChatModel>(
        &mut self,
        dataset: &TextDataset,
        query: &Instance,
        llm: &mut M,
        ledger: &mut UsageLedger,
        obs: &mut dyn RunObserver,
    ) -> Result<Vec<Exemplar>, LlmError> {
        let neighbours = match &self.state {
            SelectorState::Balanced(exemplars) => return Ok(exemplars.clone()),
            SelectorState::Kate {
                embedder,
                valid_embeddings,
            } => {
                let q = embedder.embed(&query.tokens);
                top_k_similar(valid_embeddings, &q, self.n_icl)
            }
        };
        let mut out = Vec::with_capacity(neighbours.len());
        for idx in neighbours {
            // Unlabeled validation rows cannot serve as exemplars.
            let Some(label) = dataset.valid.instances.get(idx).and_then(|i| i.label) else {
                continue;
            };
            out.push(self.annotate_kate(dataset, idx, label, llm, ledger, obs)?);
        }
        Ok(out)
    }

    /// LLM-annotate validation example `idx` (cached).
    fn annotate_kate<M: ChatModel>(
        &mut self,
        dataset: &TextDataset,
        idx: usize,
        label: usize,
        llm: &mut M,
        ledger: &mut UsageLedger,
        obs: &mut dyn RunObserver,
    ) -> Result<Exemplar, LlmError> {
        if let Some(e) = self.kate_cache.get(&idx) {
            return Ok(e.clone());
        }
        let Some(inst) = dataset.valid.instances.get(idx) else {
            return Err(LlmError::EmptyResponse);
        };
        let msgs = prompt::annotation_messages(&dataset.spec, &inst.prompt_text(), label);
        let resp = llm.complete(&prompt::request(msgs, 0.7, 1))?;
        observe::record_usage(ledger, obs, resp.model, resp.usage);
        let content = resp
            .choices
            .first()
            .map(|c| c.content.as_str())
            .ok_or(LlmError::EmptyResponse)?;
        let parsed = parse_response(content, dataset.n_classes());
        let keywords = if parsed.keywords.is_empty() {
            // Annotation failed: fall back to the longest content word.
            inst.tokens
                .iter()
                .max_by_key(|t| t.len())
                .cloned()
                .into_iter()
                .collect()
        } else {
            parsed.keywords
        };
        let exemplar = Exemplar {
            text: inst.prompt_text(),
            keywords,
            label,
            explanation: parsed.explanation,
        };
        self.kate_cache.insert(idx, exemplar.clone());
        Ok(exemplar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasculpt_data::DatasetName;
    use datasculpt_llm::{ModelId, SimulatedLlm};

    fn tiny() -> TextDataset {
        DatasetName::Imdb.load_scaled(42, 0.02)
    }

    fn balanced_of(sel: &IclSelector) -> &[Exemplar] {
        match &sel.state {
            SelectorState::Balanced(b) => b,
            SelectorState::Kate { .. } => panic!("not a balanced selector"),
        }
    }

    #[test]
    fn oracle_exemplars_use_indicative_keywords() {
        let d = tiny();
        let inst = d
            .valid
            .iter()
            .find(|i| {
                i.label == Some(1)
                    && i.tokens
                        .iter()
                        .any(|t| d.generative.affinity(t).is_some_and(|p| p[1] > p[0]))
            })
            .expect("a positive instance with an indicative token");
        let ex = Exemplar::oracle(inst, &d).expect("labeled instance");
        assert_eq!(ex.label, 1);
        assert!(!ex.keywords.is_empty());
        for kw in &ex.keywords {
            let p = d.generative.affinity(kw).expect("keyword is indicative");
            assert!(p[1] > p[0], "keyword {kw} should favour the class");
        }
        assert!(ex.explanation.is_some());
    }

    #[test]
    fn oracle_skips_unlabeled() {
        let d = tiny();
        let mut inst = d.valid.instances[0].clone();
        inst.label = None;
        assert!(Exemplar::oracle(&inst, &d).is_none());
    }

    #[test]
    fn class_balanced_is_balanced_and_deterministic() {
        let d = tiny();
        let a = IclSelector::new(&d, IclStrategy::ClassBalanced, 10, 7);
        let b = IclSelector::new(&d, IclStrategy::ClassBalanced, 10, 7);
        assert_eq!(balanced_of(&a).len(), 10);
        let ones = balanced_of(&a).iter().filter(|e| e.label == 1).count();
        assert_eq!(ones, 5, "expected perfect balance on a binary task");
        assert_eq!(
            balanced_of(&a)
                .iter()
                .map(|e| e.text.clone())
                .collect::<Vec<_>>(),
            balanced_of(&b)
                .iter()
                .map(|e| e.text.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn kate_selects_neighbours_and_caches_annotations() {
        let d = tiny();
        let mut sel = IclSelector::new(&d, IclStrategy::Kate, 4, 7);
        let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 3);
        let mut ledger = UsageLedger::new();
        let query = &d.train.instances[0];
        let ex1 = sel
            .select(&d, query, &mut llm, &mut ledger, &mut observe::NoopObserver)
            .unwrap();
        assert_eq!(ex1.len(), 4);
        let calls_after_first = ledger.calls();
        assert!(calls_after_first >= 4, "annotation calls recorded");
        // Same query again: everything cached, no new calls.
        let ex2 = sel
            .select(&d, query, &mut llm, &mut ledger, &mut observe::NoopObserver)
            .unwrap();
        assert_eq!(ledger.calls(), calls_after_first);
        assert_eq!(ex1.len(), ex2.len());
        assert_eq!(sel.cached_annotations(), 4);
    }

    #[test]
    fn kate_exemplars_carry_true_labels() {
        let d = tiny();
        let mut sel = IclSelector::new(&d, IclStrategy::Kate, 3, 1);
        let mut llm = SimulatedLlm::new(ModelId::Gpt4, d.generative.clone(), 3);
        let mut ledger = UsageLedger::new();
        let exemplars = sel
            .select(
                &d,
                &d.train.instances[1],
                &mut llm,
                &mut ledger,
                &mut observe::NoopObserver,
            )
            .unwrap();
        for e in &exemplars {
            assert!(e.label < d.n_classes());
            assert!(!e.keywords.is_empty());
        }
    }

    #[test]
    fn kate_select_propagates_llm_errors() {
        use datasculpt_llm::{FailingModel, ScriptedModel};
        let d = tiny();
        let mut sel = IclSelector::new(&d, IclStrategy::Kate, 3, 1);
        let mut llm = FailingModel::fail_every(ScriptedModel::new(vec!["Label: 1".into()]), 1);
        let mut ledger = UsageLedger::new();
        let err = sel.select(
            &d,
            &d.train.instances[0],
            &mut llm,
            &mut ledger,
            &mut observe::NoopObserver,
        );
        assert!(err.is_err());
        assert_eq!(
            llm.calls_attempted(),
            1,
            "fails fast on the first annotation"
        );
    }
}
