//! The growing LF set, with incremental filtering.

use crate::filter::{consensus, AddOutcome, FilterConfig};
use crate::index::NgramIndex;
use crate::lf::KeywordLf;
use datasculpt_data::TextDataset;
use datasculpt_labelmodel::{LabelMatrix, ABSTAIN};
use std::collections::BTreeSet;

/// The accumulated set of accepted LFs plus their cached vote columns on
/// the train and validation splits.
///
/// Candidates are offered through [`try_add`](LfSet::try_add), which applies
/// the §3.5 filters incrementally: validity structurally, accuracy against
/// the labeled validation split, redundancy against the already-accepted
/// columns on the train split.
#[derive(Debug, Clone)]
pub struct LfSet {
    lfs: Vec<KeywordLf>,
    train_cols: Vec<Vec<i32>>,
    valid_cols: Vec<Vec<i32>>,
    train_index: NgramIndex,
    valid_index: NgramIndex,
    valid_labels: Vec<Option<usize>>,
    n_classes: usize,
    filters: FilterConfig,
    seen: BTreeSet<(String, usize, bool)>,
    rejected: RejectionCounts,
}

/// How many candidates each filter rejected (for run diagnostics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RejectionCounts {
    /// Duplicates of already-accepted LFs.
    pub duplicate: usize,
    /// Validity-filter rejections.
    pub validity: usize,
    /// Accuracy-filter rejections.
    pub accuracy: usize,
    /// Redundancy-filter rejections.
    pub redundancy: usize,
}

impl LfSet {
    /// An empty set over a dataset (indexes the train and valid splits).
    pub fn new(dataset: &TextDataset, filters: FilterConfig) -> Self {
        Self {
            lfs: Vec::new(),
            train_cols: Vec::new(),
            valid_cols: Vec::new(),
            train_index: NgramIndex::build(&dataset.train),
            valid_index: NgramIndex::build(&dataset.valid),
            valid_labels: dataset.valid.labels_opt(),
            n_classes: dataset.n_classes(),
            filters,
            seen: BTreeSet::new(),
            rejected: RejectionCounts::default(),
        }
    }

    /// Number of accepted LFs.
    pub fn len(&self) -> usize {
        self.lfs.len()
    }

    /// True if no LF has been accepted.
    pub fn is_empty(&self) -> bool {
        self.lfs.is_empty()
    }

    /// The accepted LFs.
    pub fn lfs(&self) -> &[KeywordLf] {
        &self.lfs
    }

    /// Filter configuration in force.
    pub fn filters(&self) -> &FilterConfig {
        &self.filters
    }

    /// Per-filter rejection counters.
    pub fn rejections(&self) -> RejectionCounts {
        self.rejected
    }

    /// Offer a candidate LF; apply filters; keep it if it survives.
    pub fn try_add(&mut self, lf: KeywordLf) -> AddOutcome {
        let key = (lf.keyword.clone(), lf.label, lf.anchored);
        if self.seen.contains(&key) {
            self.rejected.duplicate += 1;
            return AddOutcome::Duplicate;
        }

        // Validity: 1–3-gram keyword, label within range (§3.5).
        if self.filters.validity && !(lf.is_valid_ngram() && lf.label < self.n_classes) {
            self.rejected.validity += 1;
            return AddOutcome::RejectedValidity;
        }
        // Even with the validity filter off, out-of-range labels cannot be
        // represented in the vote matrix.
        if lf.label >= self.n_classes || lf.keyword.is_empty() {
            self.rejected.validity += 1;
            return AddOutcome::RejectedValidity;
        }

        // Accuracy on the labeled validation split (§3.5): prune below the
        // threshold; inactive-everywhere LFs pass.
        let valid_col = self.valid_index.apply(&lf);
        if self.filters.accuracy {
            let mut active = 0usize;
            let mut correct = 0usize;
            for (v, y) in valid_col.iter().zip(&self.valid_labels) {
                if *v == ABSTAIN {
                    continue;
                }
                if let Some(y) = y {
                    active += 1;
                    if *v as usize == *y {
                        correct += 1;
                    }
                }
            }
            if active > 0 && (correct as f64 / active as f64) < self.filters.accuracy_threshold {
                self.rejected.accuracy += 1;
                return AddOutcome::RejectedAccuracy;
            }
        }

        // Redundancy against accepted LFs, on the train split (§3.5).
        let train_col = self.train_index.apply(&lf);
        if self.filters.redundancy {
            for existing in &self.train_cols {
                if consensus(&train_col, existing) > self.filters.redundancy_threshold {
                    self.rejected.redundancy += 1;
                    return AddOutcome::RejectedRedundancy;
                }
            }
        }

        self.seen.insert(key);
        self.lfs.push(lf);
        self.train_cols.push(train_col);
        self.valid_cols.push(valid_col);
        AddOutcome::Added
    }

    /// The weak-label matrix over the train split.
    pub fn train_matrix(&self) -> LabelMatrix {
        let rows = self.train_index.len();
        LabelMatrix::from_columns(&self.train_cols, rows)
    }

    /// The weak-label matrix over the validation split.
    pub fn valid_matrix(&self) -> LabelMatrix {
        let rows = self.valid_index.len();
        LabelMatrix::from_columns(&self.valid_cols, rows)
    }

    /// Vote column of accepted LF `j` on the train split.
    pub fn train_column(&self, j: usize) -> &[i32] {
        &self.train_cols[j]
    }

    /// Number of classes of the underlying task.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasculpt_data::DatasetName;

    fn tiny() -> TextDataset {
        DatasetName::Imdb.load_scaled(42, 0.01)
    }

    #[test]
    fn accepts_good_keyword() {
        let d = tiny();
        let mut set = LfSet::new(&d, FilterConfig::all());
        // "great" is a strong positive keyword; it should be accurate on
        // the validation set.
        let outcome = set.try_add(KeywordLf::new("great", 1));
        assert_eq!(outcome, AddOutcome::Added);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn duplicate_is_flagged() {
        let d = tiny();
        let mut set = LfSet::new(&d, FilterConfig::all());
        assert!(set.try_add(KeywordLf::new("great", 1)).accepted());
        assert_eq!(
            set.try_add(KeywordLf::new("great", 1)),
            AddOutcome::Duplicate
        );
        assert_eq!(set.rejections().duplicate, 1);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn validity_rejects_long_ngrams_and_bad_labels() {
        let d = tiny();
        let mut set = LfSet::new(&d, FilterConfig::all());
        assert_eq!(
            set.try_add(KeywordLf::new("one two three four", 1)),
            AddOutcome::RejectedValidity
        );
        assert_eq!(
            set.try_add(KeywordLf::new("great", 7)),
            AddOutcome::RejectedValidity
        );
        assert_eq!(set.rejections().validity, 2);
    }

    #[test]
    fn wrong_label_keyword_fails_accuracy_filter() {
        let d = tiny();
        let mut set = LfSet::new(&d, FilterConfig::all());
        // "great" voting *negative* should be pruned by validation accuracy.
        assert_eq!(
            set.try_add(KeywordLf::new("great", 0)),
            AddOutcome::RejectedAccuracy
        );
    }

    #[test]
    fn inactive_lf_passes_accuracy_filter() {
        let d = tiny();
        let mut set = LfSet::new(&d, FilterConfig::all());
        // A keyword that never occurs is inactive on validation: passes.
        assert!(set
            .try_add(KeywordLf::new("zxqv never occurs", 1))
            .accepted());
    }

    #[test]
    fn redundancy_rejects_identical_activation() {
        let d = tiny();
        let mut set = LfSet::new(&d, FilterConfig::all());
        assert!(set.try_add(KeywordLf::new("great", 1)).accepted());
        // "great" and "great" with different surface? Use the same keyword
        // under a different anchoring flag to build an identical column.
        // Simpler: a bigram that fires on exactly the same instances is
        // rare in real data, so test via filter-off comparison instead:
        // re-adding is Duplicate, so craft redundancy with "so great"
        // (subset of "great" activations) only if consensus > 0.95 — if it
        // isn't, this test asserts it was added.
        let out = set.try_add(KeywordLf::new("so great", 1));
        assert!(matches!(
            out,
            AddOutcome::Added | AddOutcome::RejectedRedundancy | AddOutcome::RejectedAccuracy
        ));
    }

    #[test]
    fn without_accuracy_filter_bad_lfs_survive() {
        let d = tiny();
        let mut strict = LfSet::new(&d, FilterConfig::all());
        let mut loose = LfSet::new(&d, FilterConfig::without_accuracy());
        let bad = KeywordLf::new("great", 0);
        assert_eq!(strict.try_add(bad.clone()), AddOutcome::RejectedAccuracy);
        assert!(loose.try_add(bad).accepted());
    }

    #[test]
    fn matrices_have_right_shape() {
        let d = tiny();
        let mut set = LfSet::new(&d, FilterConfig::all());
        set.try_add(KeywordLf::new("great", 1));
        set.try_add(KeywordLf::new("horrible", 0));
        let m = set.train_matrix();
        assert_eq!(m.rows(), d.train.len());
        assert_eq!(m.cols(), set.len());
        let v = set.valid_matrix();
        assert_eq!(v.rows(), d.valid.len());
    }
}
