//! The growing LF set, with incremental filtering.

use crate::filter::{consensus, AddOutcome, FilterConfig};
use crate::index::NgramIndex;
use crate::lf::KeywordLf;
use datasculpt_data::TextDataset;
use datasculpt_exec::Pool;
use datasculpt_labelmodel::{LabelMatrix, ABSTAIN};
use datasculpt_text::TokenArena;
use std::collections::{BTreeMap, BTreeSet};

/// A candidate memo key: interned keyword symbol, label, anchoring flag.
type CandidateKey = (u32, usize, bool);

/// The accumulated set of accepted LFs plus their cached vote columns on
/// the train and validation splits, held directly as LF-major
/// [`LabelMatrix`] values: accepting an LF appends one contiguous column,
/// and the label model consumes the matrices by reference with no
/// per-call rebuild.
///
/// Candidates are offered through [`try_add`](LfSet::try_add), which applies
/// the §3.5 filters incrementally: validity structurally, accuracy against
/// the labeled validation split, redundancy against the already-accepted
/// columns on the train split.
#[derive(Debug, Clone)]
pub struct LfSet {
    lfs: Vec<KeywordLf>,
    train_votes: LabelMatrix,
    valid_votes: LabelMatrix,
    train_index: NgramIndex,
    valid_index: NgramIndex,
    valid_labels: Vec<Option<usize>>,
    n_classes: usize,
    filters: FilterConfig,
    /// Interns candidate keywords once; memo keys carry the `u32` symbol
    /// instead of an owned `String` per offer.
    memo_arena: TokenArena,
    seen: BTreeSet<CandidateKey>,
    /// Keys already rejected, with the outcome of their first offer.
    /// Sound to memoize: validity and accuracy do not depend on the set,
    /// and redundancy is monotone — the set only grows, so a redundant
    /// candidate can never become acceptable later.
    rejected_seen: BTreeMap<CandidateKey, AddOutcome>,
    rejected: RejectionCounts,
    pool: Pool,
}

/// How many candidates each filter rejected (for run diagnostics).
///
/// The per-filter counters count *distinct* candidates; an LF the LLM
/// re-proposes after a rejection increments only
/// [`repeat`](Self::repeat).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RejectionCounts {
    /// Duplicates of already-accepted LFs.
    pub duplicate: usize,
    /// Validity-filter rejections.
    pub validity: usize,
    /// Accuracy-filter rejections.
    pub accuracy: usize,
    /// Redundancy-filter rejections.
    pub redundancy: usize,
    /// Repeat offers of already-rejected candidates (answered from the
    /// memo, without re-running any filter).
    pub repeat: usize,
}

impl LfSet {
    /// An empty set over a dataset (indexes the train and valid splits).
    pub fn new(dataset: &TextDataset, filters: FilterConfig) -> Self {
        let train_index = NgramIndex::build(&dataset.train);
        let valid_index = NgramIndex::build(&dataset.valid);
        Self {
            lfs: Vec::new(),
            train_votes: LabelMatrix::empty(train_index.len(), 0),
            valid_votes: LabelMatrix::empty(valid_index.len(), 0),
            train_index,
            valid_index,
            valid_labels: dataset.valid.labels_opt(),
            n_classes: dataset.n_classes(),
            filters,
            memo_arena: TokenArena::new(),
            seen: BTreeSet::new(),
            rejected_seen: BTreeMap::new(),
            rejected: RejectionCounts::default(),
            pool: Pool::serial(),
        }
    }

    /// Use `pool` for chunked-parallel vote-column construction. Vote
    /// columns are integer-valued and per-instance independent, so the
    /// set's contents are identical at every thread count.
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Number of accepted LFs.
    pub fn len(&self) -> usize {
        self.lfs.len()
    }

    /// True if no LF has been accepted.
    pub fn is_empty(&self) -> bool {
        self.lfs.is_empty()
    }

    /// The accepted LFs.
    pub fn lfs(&self) -> &[KeywordLf] {
        &self.lfs
    }

    /// Filter configuration in force.
    pub fn filters(&self) -> &FilterConfig {
        &self.filters
    }

    /// Per-filter rejection counters.
    pub fn rejections(&self) -> RejectionCounts {
        self.rejected
    }

    /// Offer a candidate LF; apply filters; keep it if it survives.
    ///
    /// Repeat offers are answered from memos: an accepted key comes back
    /// as [`AddOutcome::Duplicate`], and a rejected key returns the same
    /// outcome as its first offer without re-running the O(|set| · n)
    /// filter scan (counted under [`RejectionCounts::repeat`]).
    pub fn try_add(&mut self, lf: KeywordLf) -> AddOutcome {
        let key = (self.memo_arena.intern(&lf.keyword), lf.label, lf.anchored);
        if self.seen.contains(&key) {
            self.rejected.duplicate += 1;
            return AddOutcome::Duplicate;
        }
        if let Some(&outcome) = self.rejected_seen.get(&key) {
            self.rejected.repeat += 1;
            return outcome;
        }

        // Validity: 1–3-gram keyword, label within range (§3.5).
        if self.filters.validity && !(lf.is_valid_ngram() && lf.label < self.n_classes) {
            self.rejected.validity += 1;
            self.rejected_seen.insert(key, AddOutcome::RejectedValidity);
            return AddOutcome::RejectedValidity;
        }
        // Even with the validity filter off, out-of-range labels cannot be
        // represented in the vote matrix.
        if lf.label >= self.n_classes || lf.keyword.is_empty() {
            self.rejected.validity += 1;
            self.rejected_seen.insert(key, AddOutcome::RejectedValidity);
            return AddOutcome::RejectedValidity;
        }

        // Accuracy on the labeled validation split (§3.5): prune below the
        // threshold; inactive-everywhere LFs pass.
        let valid_col = self.valid_index.apply_with(&lf, &self.pool);
        if self.filters.accuracy {
            let mut active = 0usize;
            let mut correct = 0usize;
            for (v, y) in valid_col.iter().zip(&self.valid_labels) {
                if *v == ABSTAIN {
                    continue;
                }
                if let Some(y) = y {
                    active += 1;
                    if *v as usize == *y {
                        correct += 1;
                    }
                }
            }
            if active > 0 && (correct as f64 / active as f64) < self.filters.accuracy_threshold {
                self.rejected.accuracy += 1;
                self.rejected_seen.insert(key, AddOutcome::RejectedAccuracy);
                return AddOutcome::RejectedAccuracy;
            }
        }

        // Redundancy against accepted LFs, on the train split (§3.5):
        // prune when consensus *reaches* the threshold (inclusive, so a
        // byte-identical column is pruned even at threshold 1.0). Each
        // existing column is a contiguous slice of the vote matrix.
        let train_col = self.train_index.apply_with(&lf, &self.pool);
        if self.filters.redundancy {
            for existing in self.train_votes.columns() {
                if consensus(&train_col, existing) >= self.filters.redundancy_threshold {
                    self.rejected.redundancy += 1;
                    self.rejected_seen
                        .insert(key, AddOutcome::RejectedRedundancy);
                    return AddOutcome::RejectedRedundancy;
                }
            }
        }

        // The columns come from the split indexes (right length) with
        // votes in {abstain, label < n_classes}, so the pushes cannot
        // fail; if that invariant ever breaks, keep the two matrices
        // aligned and refuse the candidate instead of panicking.
        if self.train_votes.try_push_column(&train_col).is_err()
            || self.valid_votes.try_push_column(&valid_col).is_err()
        {
            while self.train_votes.cols() > self.lfs.len() {
                self.train_votes.pop_column();
            }
            self.rejected.validity += 1;
            self.rejected_seen.insert(key, AddOutcome::RejectedValidity);
            return AddOutcome::RejectedValidity;
        }
        self.seen.insert(key);
        self.lfs.push(lf);
        AddOutcome::Added
    }

    /// The weak-label matrix over the train split (held columnar; no
    /// per-call rebuild).
    pub fn train_matrix(&self) -> &LabelMatrix {
        &self.train_votes
    }

    /// The weak-label matrix over the validation split.
    pub fn valid_matrix(&self) -> &LabelMatrix {
        &self.valid_votes
    }

    /// Vote column of accepted LF `j` on the train split.
    pub fn train_column(&self, j: usize) -> &[i32] {
        self.train_votes.column(j)
    }

    /// Number of classes of the underlying task.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasculpt_data::DatasetName;

    fn tiny() -> TextDataset {
        DatasetName::Imdb.load_scaled(42, 0.01)
    }

    #[test]
    fn accepts_good_keyword() {
        let d = tiny();
        let mut set = LfSet::new(&d, FilterConfig::all());
        // "great" is a strong positive keyword; it should be accurate on
        // the validation set.
        let outcome = set.try_add(KeywordLf::new("great", 1));
        assert_eq!(outcome, AddOutcome::Added);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn duplicate_is_flagged() {
        let d = tiny();
        let mut set = LfSet::new(&d, FilterConfig::all());
        assert!(set.try_add(KeywordLf::new("great", 1)).accepted());
        assert_eq!(
            set.try_add(KeywordLf::new("great", 1)),
            AddOutcome::Duplicate
        );
        assert_eq!(set.rejections().duplicate, 1);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn validity_rejects_long_ngrams_and_bad_labels() {
        let d = tiny();
        let mut set = LfSet::new(&d, FilterConfig::all());
        assert_eq!(
            set.try_add(KeywordLf::new("one two three four", 1)),
            AddOutcome::RejectedValidity
        );
        assert_eq!(
            set.try_add(KeywordLf::new("great", 7)),
            AddOutcome::RejectedValidity
        );
        assert_eq!(set.rejections().validity, 2);
    }

    #[test]
    fn wrong_label_keyword_fails_accuracy_filter() {
        let d = tiny();
        let mut set = LfSet::new(&d, FilterConfig::all());
        // "great" voting *negative* should be pruned by validation accuracy.
        assert_eq!(
            set.try_add(KeywordLf::new("great", 0)),
            AddOutcome::RejectedAccuracy
        );
    }

    #[test]
    fn inactive_lf_passes_accuracy_filter() {
        let d = tiny();
        let mut set = LfSet::new(&d, FilterConfig::all());
        // A keyword that never occurs is inactive on validation: passes.
        assert!(set
            .try_add(KeywordLf::new("zxqv never occurs", 1))
            .accepted());
    }

    #[test]
    fn redundancy_rejects_identical_activation() {
        let d = tiny();
        let mut set = LfSet::new(&d, FilterConfig::all());
        assert!(set.try_add(KeywordLf::new("great", 1)).accepted());
        // "great" and "great" with different surface? Use the same keyword
        // under a different anchoring flag to build an identical column.
        // Simpler: a bigram that fires on exactly the same instances is
        // rare in real data, so test via filter-off comparison instead:
        // re-adding is Duplicate, so craft redundancy with "so great"
        // (subset of "great" activations) only if consensus > 0.95 — if it
        // isn't, this test asserts it was added.
        let out = set.try_add(KeywordLf::new("so great", 1));
        assert!(matches!(
            out,
            AddOutcome::Added | AddOutcome::RejectedRedundancy | AddOutcome::RejectedAccuracy
        ));
    }

    #[test]
    fn without_accuracy_filter_bad_lfs_survive() {
        let d = tiny();
        let mut strict = LfSet::new(&d, FilterConfig::all());
        let mut loose = LfSet::new(&d, FilterConfig::without_accuracy());
        let bad = KeywordLf::new("great", 0);
        assert_eq!(strict.try_add(bad.clone()), AddOutcome::RejectedAccuracy);
        assert!(loose.try_add(bad).accepted());
    }

    /// Find a (trigram, leading-bigram) pair in the corpus whose vote
    /// columns are byte-identical: every occurrence of the bigram lies
    /// inside an occurrence of the trigram.
    fn identical_column_pair(d: &TextDataset) -> (KeywordLf, KeywordLf) {
        let index = NgramIndex::build(&d.train);
        for inst in d.train.iter() {
            let toks = inst.match_tokens();
            for w in toks.windows(3) {
                let tri = KeywordLf::new(w.join(" "), 1);
                let bi = KeywordLf::new(w[..2].join(" "), 1);
                let tri_col = index.apply(&tri);
                if tri_col.iter().any(|&v| v != ABSTAIN) && tri_col == index.apply(&bi) {
                    return (tri, bi);
                }
            }
        }
        unreachable!("corpus has no trigram whose prefix bigram is co-extensive");
    }

    #[test]
    fn identical_column_is_pruned_even_at_threshold_one() {
        let d = tiny();
        let filters = FilterConfig {
            accuracy: false, // isolate the redundancy filter
            redundancy_threshold: 1.0,
            ..FilterConfig::all()
        };
        let (tri, bi) = identical_column_pair(&d);
        let mut set = LfSet::new(&d, filters);
        assert_eq!(set.try_add(tri), AddOutcome::Added);
        // The bigram's column is byte-identical (consensus exactly 1.0);
        // the inclusive comparison must prune it even at threshold 1.0.
        assert_eq!(set.try_add(bi), AddOutcome::RejectedRedundancy);
        assert_eq!(set.rejections().redundancy, 1);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn consensus_exactly_at_threshold_is_pruned() {
        let d = tiny();
        // Find a second keyword with partial consensus against "great".
        let index = NgramIndex::build(&d.train);
        let base = KeywordLf::new("great", 1);
        let base_col = index.apply(&base);
        let (partner, c) = ["good", "movie", "film", "really", "very", "a", "the", "and"]
            .iter()
            .find_map(|kw| {
                let c = consensus(&base_col, &index.apply(&KeywordLf::new(*kw, 1)));
                (c > 0.0 && c < 1.0).then(|| (KeywordLf::new(*kw, 1), c))
            })
            .expect("some keyword shares partial activation with 'great'");
        // With the threshold set to that exact consensus, the inclusive
        // comparison prunes the partner; the pre-fix strict `>` accepted it.
        let filters = FilterConfig {
            accuracy: false,
            redundancy_threshold: c,
            ..FilterConfig::all()
        };
        let mut set = LfSet::new(&d, filters);
        assert_eq!(set.try_add(base.clone()), AddOutcome::Added);
        assert_eq!(set.try_add(partner.clone()), AddOutcome::RejectedRedundancy);
        // Just below the exact-consensus threshold the same pair is kept.
        let mut looser = LfSet::new(
            &d,
            FilterConfig {
                redundancy_threshold: c + 1e-9,
                ..filters
            },
        );
        assert_eq!(looser.try_add(base), AddOutcome::Added);
        assert_eq!(looser.try_add(partner), AddOutcome::Added);
    }

    #[test]
    fn rejected_candidates_are_memoized_not_recounted() {
        let d = tiny();
        let mut set = LfSet::new(&d, FilterConfig::all());
        let bad = KeywordLf::new("great", 0); // wrong label: accuracy reject
        assert_eq!(set.try_add(bad.clone()), AddOutcome::RejectedAccuracy);
        assert_eq!(set.rejections().accuracy, 1);
        assert_eq!(set.rejections().repeat, 0);
        // Re-offering returns the memoized outcome, counts a repeat, and
        // leaves the per-filter counter pinned at one distinct rejection.
        for round in 1..=3u64 {
            assert_eq!(set.try_add(bad.clone()), AddOutcome::RejectedAccuracy);
            assert_eq!(set.rejections().accuracy, 1);
            assert_eq!(set.rejections().repeat, round as usize);
        }
        // Invalid candidates are memoized the same way.
        let invalid = KeywordLf::new("one two three four", 1);
        assert_eq!(set.try_add(invalid.clone()), AddOutcome::RejectedValidity);
        assert_eq!(set.try_add(invalid), AddOutcome::RejectedValidity);
        assert_eq!(set.rejections().validity, 1);
        assert_eq!(set.rejections().repeat, 4);
    }

    #[test]
    fn pooled_set_accepts_the_same_lfs() {
        let d = tiny();
        let mut serial = LfSet::new(&d, FilterConfig::all());
        let mut pooled = LfSet::new(&d, FilterConfig::all()).with_pool(Pool::new(4));
        for lf in [
            KeywordLf::new("great", 1),
            KeywordLf::new("horrible", 0),
            KeywordLf::new("great", 0),
            KeywordLf::new("so great", 1),
        ] {
            assert_eq!(serial.try_add(lf.clone()), pooled.try_add(lf));
        }
        assert_eq!(serial.train_matrix().rows(), pooled.train_matrix().rows());
        for j in 0..serial.len() {
            assert_eq!(serial.train_column(j), pooled.train_column(j));
        }
    }

    #[test]
    fn matrices_have_right_shape() {
        let d = tiny();
        let mut set = LfSet::new(&d, FilterConfig::all());
        set.try_add(KeywordLf::new("great", 1));
        set.try_add(KeywordLf::new("horrible", 0));
        let m = set.train_matrix();
        assert_eq!(m.rows(), d.train.len());
        assert_eq!(m.cols(), set.len());
        let v = set.valid_matrix();
        assert_eq!(v.rows(), d.valid.len());
    }
}
