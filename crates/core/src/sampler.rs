//! Query-instance selection (§3.4): random, uncertainty, SEU.

use crate::lfset::LfSet;
use datasculpt_data::TextDataset;
use datasculpt_endmodel::{entropy, SoftmaxRegression, TrainConfig};
use datasculpt_labelmodel::{LabelModel, MajorityVote};
use datasculpt_text::rng::derive_seed;
use datasculpt_text::{Embedder, FeatureMatrix, HashedTfIdf, RandomProjection};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Which sampler to use (the rows of Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerKind {
    /// Uniform over unqueried instances (the paper's default).
    Random,
    /// Highest predictive entropy of the current downstream model
    /// (Lewis 1995).
    Uncertain,
    /// Select-by-expected-utility (Nemo, Hsieh et al. 2022): prefer
    /// instances whose candidate keyword LFs have high estimated
    /// utility = accuracy × coverage, weighted by a user model that favours
    /// accurate LFs.
    Seu,
    /// Core-set (k-center greedy, Sener & Savarese 2018): maximize the
    /// embedding-space distance to everything already queried. Not in the
    /// paper's Table 4 — an extension from the active-learning families its
    /// related work cites.
    CoreSet,
}

impl SamplerKind {
    /// Display label used in Table 4.
    pub fn label(&self) -> &'static str {
        match self {
            SamplerKind::Random => "random",
            SamplerKind::Uncertain => "uncertain",
            SamplerKind::Seu => "SEU",
            SamplerKind::CoreSet => "core-set",
        }
    }
}

/// A query-instance sampler.
pub trait QuerySampler {
    /// Pick the next train-split instance to query, or `None` when the
    /// unlabeled pool is exhausted.
    fn select(
        &mut self,
        dataset: &TextDataset,
        lf_set: &LfSet,
        queried: &BTreeSet<usize>,
    ) -> Option<usize>;
}

/// Build the sampler for a kind.
pub fn make_sampler(kind: SamplerKind, dataset: &TextDataset, seed: u64) -> Box<dyn QuerySampler> {
    match kind {
        SamplerKind::Random => Box::new(RandomSampler::new(seed)),
        SamplerKind::Uncertain => Box::new(UncertainSampler::new(dataset, seed)),
        SamplerKind::Seu => Box::new(SeuSampler::new(dataset, seed)),
        SamplerKind::CoreSet => Box::new(CoreSetSampler::new(dataset, seed)),
    }
}

/// Uniform random selection without replacement.
#[derive(Debug)]
pub struct RandomSampler {
    rng: StdRng,
}

impl RandomSampler {
    /// A seeded random sampler.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(derive_seed(seed, 0x5A11)),
        }
    }
}

impl QuerySampler for RandomSampler {
    fn select(
        &mut self,
        dataset: &TextDataset,
        _lf_set: &LfSet,
        queried: &BTreeSet<usize>,
    ) -> Option<usize> {
        let n = dataset.train.len();
        if queried.len() >= n {
            return None;
        }
        loop {
            let i = self.rng.gen_range(0..n);
            if !queried.contains(&i) {
                return Some(i);
            }
        }
    }
}

/// Size of the candidate pool samplers score (keeps per-iteration cost flat
/// on 96k-instance corpora).
const POOL_CAP: usize = 2000;

/// Uncertainty sampling: retrain a small end model on the current weak
/// labels every few iterations and pick the unqueried pool instance with
/// the highest predictive entropy.
pub struct UncertainSampler {
    rng: StdRng,
    pool: Vec<usize>,
    embeddings: FeatureMatrix,
    entropy_cache: Vec<f64>,
    refresh_every: usize,
    calls: usize,
}

impl UncertainSampler {
    /// Build: embeds a (deterministic) train-split pool up front.
    pub fn new(dataset: &TextDataset, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0x0CE2));
        let mut pool: Vec<usize> = (0..dataset.train.len()).collect();
        pool.shuffle(&mut rng);
        pool.truncate(POOL_CAP);
        let toks = |&i: &usize| {
            dataset
                .train
                .instances
                .get(i)
                .map(|inst| inst.tokens.as_slice())
                .unwrap_or(&[])
        };
        let mut tfidf = HashedTfIdf::new(2048, 1);
        tfidf.fit(pool.iter().map(toks));
        let embedder = RandomProjection::new(tfidf, 64, derive_seed(seed, 0x0CE3));
        let embeddings = embedder.embed_batch(pool.iter().map(toks));
        let entropy_cache = vec![f64::MAX; pool.len()];
        Self {
            rng,
            pool,
            embeddings,
            entropy_cache,
            refresh_every: 5,
            calls: 0,
        }
    }

    fn refresh(&mut self, dataset: &TextDataset, lf_set: &LfSet) {
        if lf_set.is_empty() {
            return; // nothing to train on yet; stay effectively random
        }
        // Weak labels on the pool via majority vote (cheap, refreshed often).
        let matrix = lf_set.train_matrix();
        let mut mv = MajorityVote::new();
        mv.fit(matrix, dataset.n_classes());
        let probs = mv.predict_proba(matrix);
        // Train a small model on covered pool instances.
        let covered: Vec<(usize, usize)> = self
            .pool
            .iter()
            .enumerate()
            .filter(|&(_, &ti)| probs.is_covered(ti))
            .map(|(pi, &ti)| (pi, ti))
            .collect();
        if covered.len() < dataset.n_classes() * 2 {
            return;
        }
        let pool_rows: Vec<usize> = covered.iter().map(|&(pi, _)| pi).collect();
        let x = self.embeddings.gather(&pool_rows);
        let targets: Vec<Vec<f64>> = covered
            .iter()
            .map(|&(_, ti)| probs.row(ti).to_vec())
            .collect();
        let mut model = SoftmaxRegression::new(64, dataset.n_classes());
        model.fit(
            &x,
            &targets,
            None,
            &TrainConfig {
                epochs: 10,
                ..TrainConfig::default()
            },
        );
        for (pi, e) in self.entropy_cache.iter_mut().enumerate() {
            let p = model.predict_proba_one(self.embeddings.row(pi));
            *e = entropy(&p);
        }
    }
}

impl QuerySampler for UncertainSampler {
    fn select(
        &mut self,
        dataset: &TextDataset,
        lf_set: &LfSet,
        queried: &BTreeSet<usize>,
    ) -> Option<usize> {
        if self.calls.is_multiple_of(self.refresh_every) {
            self.refresh(dataset, lf_set);
        }
        self.calls += 1;
        let mut best: Option<(usize, f64)> = None;
        for (&ti, &e) in self.pool.iter().zip(&self.entropy_cache) {
            if queried.contains(&ti) {
                continue;
            }
            if best.is_none_or(|(_, be)| e > be) {
                best = Some((ti, e));
            }
        }
        match best {
            Some((ti, _)) => Some(ti),
            None => {
                // Pool exhausted: fall back to random over the full split.
                let n = dataset.train.len();
                (queried.len() < n).then(|| loop {
                    let i = self.rng.gen_range(0..n);
                    if !queried.contains(&i) {
                        break i;
                    }
                })
            }
        }
    }
}

/// SEU (Nemo-style) expected-utility sampling.
///
/// For each pool instance, the candidate LFs are its n-grams; a gram's
/// utility is `accuracy(valid) × coverage(pool)`, and the user model
/// returns gram `g` with probability ∝ `exp(accuracy(g)/τ)`. The instance
/// score is the expected utility under that user model. Because the same
/// high-utility grams dominate many instances, SEU keeps choosing similar
/// queries — the redundancy the paper observes (smaller LF sets, Table 4).
pub struct SeuSampler {
    rng: StdRng,
    pool: Vec<usize>,
    scores: Vec<f64>,
}

impl SeuSampler {
    /// Build: scores the pool once from validation-set gram statistics.
    pub fn new(dataset: &TextDataset, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0x5E0));
        let mut pool: Vec<usize> = (0..dataset.train.len()).collect();
        pool.shuffle(&mut rng);
        pool.truncate(POOL_CAP);

        // Gram statistics from the labeled validation split.
        let mut gram_stats: BTreeMap<String, (f64, f64)> = BTreeMap::new(); // (acc, cov)
        {
            let mut counts: BTreeMap<String, Vec<usize>> = BTreeMap::new();
            let n_classes = dataset.n_classes();
            for inst in dataset.valid.iter() {
                let Some(y) = inst.label else { continue };
                let mut grams = datasculpt_text::extract_ngrams(inst.match_tokens(), 3);
                grams.sort_unstable();
                grams.dedup();
                for g in grams {
                    if let Some(slot) = counts
                        .entry(g)
                        .or_insert_with(|| vec![0; n_classes])
                        .get_mut(y)
                    {
                        *slot += 1;
                    }
                }
            }
            let n_valid = dataset.valid.len().max(1) as f64;
            for (g, hist) in counts {
                let active: usize = hist.iter().sum();
                if active == 0 {
                    continue;
                }
                let best = hist.iter().copied().max().unwrap_or(0);
                gram_stats.insert(g, (best as f64 / active as f64, active as f64 / n_valid));
            }
        }

        // Expected utility per pool instance.
        const TAU: f64 = 0.1;
        let scores: Vec<f64> = pool
            .iter()
            .map(|&ti| {
                let Some(inst) = dataset.train.instances.get(ti) else {
                    return 0.0;
                };
                let mut grams = datasculpt_text::extract_ngrams(inst.match_tokens(), 3);
                grams.sort_unstable();
                grams.dedup();
                let entries: Vec<(f64, f64)> = grams
                    .iter()
                    .filter_map(|g| gram_stats.get(g).copied())
                    .collect();
                if entries.is_empty() {
                    return 0.0;
                }
                let z: f64 = entries.iter().map(|(a, _)| (a / TAU).exp()).sum();
                entries
                    .iter()
                    .map(|(a, cov)| ((a / TAU).exp() / z) * (a * cov))
                    .sum()
            })
            .collect();

        Self { rng, pool, scores }
    }
}

impl QuerySampler for SeuSampler {
    fn select(
        &mut self,
        dataset: &TextDataset,
        _lf_set: &LfSet,
        queried: &BTreeSet<usize>,
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (&ti, &s) in self.pool.iter().zip(&self.scores) {
            if queried.contains(&ti) {
                continue;
            }
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((ti, s));
            }
        }
        match best {
            Some((ti, _)) => Some(ti),
            None => {
                let n = dataset.train.len();
                (queried.len() < n).then(|| loop {
                    let i = self.rng.gen_range(0..n);
                    if !queried.contains(&i) {
                        break i;
                    }
                })
            }
        }
    }
}

/// Core-set sampling: k-center greedy in embedding space.
///
/// The first pick is the pool instance closest to the pool centroid; each
/// later pick maximizes the minimum cosine distance to everything already
/// queried, spreading queries across the input distribution.
pub struct CoreSetSampler {
    rng: StdRng,
    pool: Vec<usize>,
    embeddings: FeatureMatrix,
    /// Min distance from each pool instance to the queried set so far.
    min_dist: Vec<f64>,
}

impl CoreSetSampler {
    /// Build: embeds a (deterministic) train-split pool up front.
    pub fn new(dataset: &TextDataset, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0xC0DE));
        let mut pool: Vec<usize> = (0..dataset.train.len()).collect();
        pool.shuffle(&mut rng);
        pool.truncate(POOL_CAP);
        let toks = |&i: &usize| {
            dataset
                .train
                .instances
                .get(i)
                .map(|inst| inst.tokens.as_slice())
                .unwrap_or(&[])
        };
        let mut tfidf = HashedTfIdf::new(2048, 1);
        tfidf.fit(pool.iter().map(toks));
        let embedder = RandomProjection::new(tfidf, 64, derive_seed(seed, 0xC0DF));
        let embeddings = embedder.embed_batch(pool.iter().map(toks));
        Self {
            rng,
            pool,
            embeddings,
            min_dist: vec![f64::INFINITY; 0],
        }
    }

    fn cosine_distance(&self, a: usize, b: usize) -> f64 {
        let (x, y) = (self.embeddings.row(a), self.embeddings.row(b));
        let dot: f32 = x.iter().zip(y).map(|(p, q)| p * q).sum();
        (1.0 - dot as f64).max(0.0)
    }
}

impl QuerySampler for CoreSetSampler {
    fn select(
        &mut self,
        dataset: &TextDataset,
        _lf_set: &LfSet,
        queried: &BTreeSet<usize>,
    ) -> Option<usize> {
        if self.min_dist.is_empty() {
            // First pick: closest to the centroid.
            let dim = self.embeddings.dim();
            let mut centroid = vec![0.0f64; dim];
            for pi in 0..self.pool.len() {
                for (c, v) in centroid.iter_mut().zip(self.embeddings.row(pi)) {
                    *c += *v as f64;
                }
            }
            let n = self.pool.len().max(1) as f64;
            for c in centroid.iter_mut() {
                *c /= n;
            }
            let first = (0..self.pool.len())
                .filter(|&pi| self.pool.get(pi).is_some_and(|ti| !queried.contains(ti)))
                .max_by(|&a, &b| {
                    let score = |pi: usize| {
                        self.embeddings
                            .row(pi)
                            .iter()
                            .zip(&centroid)
                            .map(|(v, c)| *v as f64 * c)
                            .sum::<f64>()
                    };
                    score(a).total_cmp(&score(b))
                });
            if let Some(pi) = first {
                self.min_dist = (0..self.pool.len())
                    .map(|qi| self.cosine_distance(qi, pi))
                    .collect();
                return self.pool.get(pi).copied();
            }
        } else {
            // k-center greedy: farthest pool instance from the queried set.
            let dist = |pi: usize| self.min_dist.get(pi).copied().unwrap_or(f64::NEG_INFINITY);
            let next = (0..self.pool.len())
                .filter(|&pi| self.pool.get(pi).is_some_and(|ti| !queried.contains(ti)))
                .max_by(|&a, &b| dist(a).total_cmp(&dist(b)));
            if let Some(pi) = next {
                for qi in 0..self.pool.len() {
                    let d = self.cosine_distance(qi, pi);
                    if let Some(md) = self.min_dist.get_mut(qi) {
                        if d < *md {
                            *md = d;
                        }
                    }
                }
                return self.pool.get(pi).copied();
            }
        }
        // Pool exhausted: fall back to random over the full split.
        let n = dataset.train.len();
        (queried.len() < n).then(|| loop {
            let i = self.rng.gen_range(0..n);
            if !queried.contains(&i) {
                break i;
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::FilterConfig;
    use datasculpt_data::DatasetName;

    fn tiny() -> TextDataset {
        DatasetName::Youtube.load_scaled(5, 0.1)
    }

    #[test]
    fn random_sampler_is_deterministic_and_exhaustive() {
        let d = tiny();
        let set = LfSet::new(&d, FilterConfig::all());
        let mut queried = BTreeSet::new();
        let mut a = RandomSampler::new(3);
        let mut b = RandomSampler::new(3);
        for _ in 0..20 {
            let ia = a.select(&d, &set, &queried).expect("instances remain");
            let ib = b.select(&d, &set, &queried).expect("instances remain");
            assert_eq!(ia, ib);
            queried.insert(ia);
        }
        assert_eq!(queried.len(), 20);
    }

    #[test]
    fn random_sampler_returns_none_when_exhausted() {
        let d = tiny();
        let set = LfSet::new(&d, FilterConfig::all());
        let queried: BTreeSet<usize> = (0..d.train.len()).collect();
        let mut s = RandomSampler::new(0);
        assert_eq!(s.select(&d, &set, &queried), None);
    }

    #[test]
    fn uncertain_sampler_runs_and_avoids_queried() {
        let d = tiny();
        let mut set = LfSet::new(&d, FilterConfig::all());
        set.try_add(crate::lf::KeywordLf::new("subscribe", 1));
        set.try_add(crate::lf::KeywordLf::new("love", 0));
        let mut s = UncertainSampler::new(&d, 1);
        let mut queried = BTreeSet::new();
        for _ in 0..10 {
            let i = s.select(&d, &set, &queried).expect("instances remain");
            assert!(!queried.contains(&i));
            queried.insert(i);
        }
    }

    #[test]
    fn seu_prefers_instances_with_strong_known_grams() {
        let d = tiny();
        let set = LfSet::new(&d, FilterConfig::all());
        let mut s = SeuSampler::new(&d, 2);
        let first = s
            .select(&d, &set, &BTreeSet::new())
            .expect("instances remain");
        // The chosen instance should contain at least one indicative gram.
        let inst = &d.train.instances[first];
        let has_indicative = inst
            .tokens
            .iter()
            .any(|t| d.generative.affinity(t).is_some());
        assert!(has_indicative, "SEU should pick an instance with signal");
    }

    #[test]
    fn seu_is_greedy_and_deterministic() {
        let d = tiny();
        let set = LfSet::new(&d, FilterConfig::all());
        let mut a = SeuSampler::new(&d, 2);
        let mut b = SeuSampler::new(&d, 2);
        let mut qa = BTreeSet::new();
        let mut qb = BTreeSet::new();
        for _ in 0..5 {
            let ia = a.select(&d, &set, &qa).expect("remain");
            let ib = b.select(&d, &set, &qb).expect("remain");
            assert_eq!(ia, ib);
            qa.insert(ia);
            qb.insert(ib);
        }
    }

    #[test]
    fn labels_render() {
        assert_eq!(SamplerKind::Random.label(), "random");
        assert_eq!(SamplerKind::Uncertain.label(), "uncertain");
        assert_eq!(SamplerKind::Seu.label(), "SEU");
        assert_eq!(SamplerKind::CoreSet.label(), "core-set");
    }

    #[test]
    fn coreset_spreads_queries() {
        let d = tiny();
        let set = LfSet::new(&d, FilterConfig::all());
        let mut s = CoreSetSampler::new(&d, 4);
        let mut queried = BTreeSet::new();
        let mut picks = Vec::new();
        for _ in 0..8 {
            let i = s.select(&d, &set, &queried).expect("instances remain");
            assert!(!queried.contains(&i));
            queried.insert(i);
            picks.push(i);
        }
        // All picks distinct and deterministic under the seed.
        let mut s2 = CoreSetSampler::new(&d, 4);
        let mut q2 = BTreeSet::new();
        for &expected in &picks {
            let i = s2.select(&d, &set, &q2).expect("instances remain");
            assert_eq!(i, expected);
            q2.insert(i);
        }
    }
}
