//! DataSculpt: cost-efficient label-function design via prompting LLMs.
//!
//! This crate is the paper's primary contribution (Guan, Chen & Koudas,
//! EDBT 2025): an iterative programmatic-weak-supervision framework that
//! prompts an LLM to synthesize keyword label functions (Figure 1).
//!
//! One iteration of [`pipeline::DataSculpt::run`]:
//!
//! 1. a [`sampler`] picks a query instance from the unlabeled train split
//!    (random / uncertainty / SEU — §3.4),
//! 2. [`prompt`] builds the few-shot prompt of Figure 2 with in-context
//!    examples chosen by [`icl`] (class-balanced or KATE — §3.3),
//! 3. the [`datasculpt_llm::ChatModel`] returns one or more samples, which
//!    [`parse`] turns into `(keywords, label)` and [`consistency`]
//!    aggregates by majority vote (self-consistency — §4.1),
//! 4. each keyword becomes a [`lf::KeywordLf`] and must pass the
//!    validity / accuracy / redundancy [`filter`]s (§3.5) before joining
//!    the [`lfset::LfSet`].
//!
//! [`eval`] then runs the standard PWS tail: label model → probabilistic
//! labels (+ the default-class rule of §3.6) → end model → the metrics of
//! Tables 2–5.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod consistency;
pub mod eval;
pub mod filter;
pub mod icl;
pub mod index;
pub mod lf;
pub mod lfset;
pub mod observe;
pub mod parse;
pub mod pipeline;
pub mod prompt;
pub mod sampler;

pub use consistency::aggregate_consistency;
pub use eval::{evaluate_lf_set, EndModelKind, EvalConfig, LabelModelKind, LfStats, PwsEvaluation};
pub use filter::{AddOutcome, FilterConfig};
pub use icl::{Exemplar, IclStrategy};
pub use index::NgramIndex;
pub use lf::KeywordLf;
pub use lfset::LfSet;
pub use parse::{parse_response, ParsedResponse};
pub use pipeline::{
    run_state_digest, CheckpointSink, DataSculpt, DataSculptConfig, IterationCheckpoint,
    IterationLog, PipelineError, PromptStyle, RunResult,
};
pub use sampler::SamplerKind;
