//! Robust parsing of LLM responses into `(keywords, label, explanation)`.
//!
//! Responses follow the Figure 2 contract (`Explanation:` / `Keywords:` /
//! `Label:` lines), but weak models break it in practice: missing label
//! lines, prose, hallucinated extra examples. The parser is deliberately
//! tolerant — it takes the *last* occurrence of each marker, normalizes
//! keywords through the tokenizer, and refuses labels outside the class
//! range. Anything unusable simply yields no LFs for that response.

use datasculpt_llm::simulated::{EXPLANATION_PREFIX, KEYWORDS_PREFIX, LABEL_PREFIX};
use datasculpt_text::tokenize;

/// A parsed LLM response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedResponse {
    /// Canonicalized keywords (lowercase, tokenizer-normalized, deduped,
    /// order preserved).
    pub keywords: Vec<String>,
    /// Predicted class label, if present and in range.
    pub label: Option<usize>,
    /// Chain-of-thought explanation, if present.
    pub explanation: Option<String>,
}

impl ParsedResponse {
    /// Whether this response can contribute LFs.
    pub fn is_usable(&self) -> bool {
        self.label.is_some() && !self.keywords.is_empty()
    }
}

/// Parse one response.
pub fn parse_response(text: &str, n_classes: usize) -> ParsedResponse {
    let keywords = text
        .rfind(KEYWORDS_PREFIX)
        .map(|p| {
            let after = text.get(p + KEYWORDS_PREFIX.len()..).unwrap_or("");
            let line = after.lines().next().unwrap_or("");
            let mut out = Vec::new();
            for raw in line.split(',') {
                let norm = tokenize(raw).join(" ");
                if norm.is_empty() || norm == "none" || out.contains(&norm) {
                    continue;
                }
                out.push(norm);
            }
            out
        })
        .unwrap_or_default();

    let label = parse_label(text, n_classes);

    let explanation = text.rfind(EXPLANATION_PREFIX).map(|p| {
        text.get(p + EXPLANATION_PREFIX.len()..)
            .unwrap_or("")
            .lines()
            .next()
            .unwrap_or("")
            .trim()
            .to_string()
    });

    ParsedResponse {
        keywords,
        label,
        explanation,
    }
}

/// Parse a label: the digit after the last `Label:`, or — for label-only
/// responses — the bare text itself. `"abstain"` and out-of-range values
/// yield `None`.
pub fn parse_label(text: &str, n_classes: usize) -> Option<usize> {
    let candidate: Option<usize> = match text.rfind(LABEL_PREFIX) {
        Some(p) => text
            .get(p + LABEL_PREFIX.len()..)
            .unwrap_or("")
            .split_whitespace()
            .next()
            .and_then(|tok| tok.trim_matches(|c: char| !c.is_ascii_digit()).parse().ok()),
        None => {
            let t = text.trim();
            if t.chars().all(|c| c.is_ascii_digit()) && !t.is_empty() {
                t.parse().ok()
            } else {
                None
            }
        }
    };
    candidate.filter(|&c| c < n_classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_base_format() {
        let r = parse_response("Keywords: great, funny movie\nLabel: 1", 2);
        assert_eq!(r.keywords, vec!["great", "funny movie"]);
        assert_eq!(r.label, Some(1));
        assert!(r.explanation.is_none());
        assert!(r.is_usable());
    }

    #[test]
    fn parses_cot_format() {
        let r = parse_response(
            "Explanation: the review praises the film.\nKeywords: brilliant\nLabel: 1",
            2,
        );
        assert_eq!(
            r.explanation.as_deref(),
            Some("the review praises the film.")
        );
        assert_eq!(r.keywords, vec!["brilliant"]);
    }

    #[test]
    fn takes_last_marker_occurrence() {
        // Hallucinated extra example before the real answer — or after it:
        // we always use the last block.
        let r = parse_response(
            "Keywords: junk\nLabel: 0\nQuery: invented\nKeywords: subscribe\nLabel: 1",
            2,
        );
        assert_eq!(r.keywords, vec!["subscribe"]);
        assert_eq!(r.label, Some(1));
    }

    #[test]
    fn missing_label_line_is_unusable() {
        let r = parse_response("Keywords: great", 2);
        assert_eq!(r.label, None);
        assert!(!r.is_usable());
    }

    #[test]
    fn out_of_range_label_rejected() {
        assert_eq!(parse_response("Keywords: x\nLabel: 7", 2).label, None);
        assert_eq!(parse_response("Keywords: x\nLabel: 3", 4).label, Some(3));
    }

    #[test]
    fn bare_digit_is_a_label_only_response() {
        let r = parse_response("1", 2);
        assert_eq!(r.label, Some(1));
        assert!(r.keywords.is_empty());
        assert_eq!(parse_response("abstain", 2).label, None);
    }

    #[test]
    fn keywords_are_normalized_and_deduped() {
        let r = parse_response("Keywords: Great!, GREAT, So  Good\nLabel: 1", 2);
        assert_eq!(r.keywords, vec!["great", "so good"]);
    }

    #[test]
    fn none_keyword_is_dropped() {
        let r = parse_response("Keywords: none\nLabel: 0", 2);
        assert!(r.keywords.is_empty());
        assert!(!r.is_usable());
    }

    #[test]
    fn empty_response() {
        let r = parse_response("", 2);
        assert_eq!(r.label, None);
        assert!(r.keywords.is_empty());
    }
}
