//! LF filters (§3.5): validity, accuracy, redundancy.

/// Which filters are active, and their thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterConfig {
    /// Reject keywords that are not 1–3-grams or labels outside the class
    /// range.
    pub validity: bool,
    /// Reject LFs whose validation accuracy is below
    /// [`accuracy_threshold`](Self::accuracy_threshold). LFs inactive on
    /// every validation instance pass.
    pub accuracy: bool,
    /// Reject LFs whose activation consensus (intersection-over-union of
    /// agreeing activations) with an already-accepted LF reaches
    /// [`redundancy_threshold`](Self::redundancy_threshold). The
    /// comparison is inclusive (`consensus ≥ threshold`, per the paper's
    /// "consensus ≥ 0.95" rule), so at a threshold of 1.0 a byte-identical
    /// vote column is still pruned.
    pub redundancy: bool,
    /// Validation-accuracy cutoff (paper default 0.6).
    pub accuracy_threshold: f64,
    /// Consensus cutoff, inclusive (paper default 0.95).
    pub redundancy_threshold: f64,
}

impl Default for FilterConfig {
    fn default() -> Self {
        Self::all()
    }
}

impl FilterConfig {
    /// All three filters at the paper's default thresholds.
    pub fn all() -> Self {
        Self {
            validity: true,
            accuracy: true,
            redundancy: true,
            accuracy_threshold: 0.6,
            redundancy_threshold: 0.95,
        }
    }

    /// The "no accuracy" ablation row of Table 5.
    pub fn without_accuracy() -> Self {
        Self {
            accuracy: false,
            ..Self::all()
        }
    }

    /// The "no redundancy" ablation row of Table 5.
    pub fn without_redundancy() -> Self {
        Self {
            redundancy: false,
            ..Self::all()
        }
    }

    /// Validity only (accuracy and redundancy both off).
    pub fn validity_only() -> Self {
        Self {
            accuracy: false,
            redundancy: false,
            ..Self::all()
        }
    }
}

/// The result of offering a candidate LF to an [`crate::LfSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddOutcome {
    /// Accepted into the set.
    Added,
    /// Identical `(keyword, label, anchoring)` already present.
    Duplicate,
    /// Failed the validity filter.
    RejectedValidity,
    /// Failed the accuracy filter.
    RejectedAccuracy,
    /// Failed the redundancy filter.
    RejectedRedundancy,
}

impl AddOutcome {
    /// Whether the candidate joined the set.
    pub fn accepted(&self) -> bool {
        matches!(self, AddOutcome::Added)
    }
}

/// Consensus between two vote columns: among instances where either LF
/// fires, the fraction where both fire *with the same vote*.
pub fn consensus(a: &[i32], b: &[i32]) -> f64 {
    use datasculpt_labelmodel::ABSTAIN;
    assert_eq!(a.len(), b.len(), "column length mismatch");
    let mut agree = 0usize;
    let mut union = 0usize;
    for (&va, &vb) in a.iter().zip(b) {
        let fa = va != ABSTAIN;
        let fb = vb != ABSTAIN;
        if fa || fb {
            union += 1;
            if fa && fb && va == vb {
                agree += 1;
            }
        }
    }
    if union == 0 {
        0.0
    } else {
        agree as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasculpt_labelmodel::ABSTAIN;

    #[test]
    fn presets_toggle_the_right_filters() {
        let all = FilterConfig::all();
        assert!(all.validity && all.accuracy && all.redundancy);
        assert_eq!(all.accuracy_threshold, 0.6);
        assert_eq!(all.redundancy_threshold, 0.95);
        let na = FilterConfig::without_accuracy();
        assert!(!na.accuracy && na.validity && na.redundancy);
        let nr = FilterConfig::without_redundancy();
        assert!(!nr.redundancy && nr.validity && nr.accuracy);
        let vo = FilterConfig::validity_only();
        assert!(vo.validity && !vo.accuracy && !vo.redundancy);
    }

    #[test]
    fn consensus_is_iou_of_agreeing_activations() {
        let a = vec![1, 1, ABSTAIN, ABSTAIN];
        let b = vec![1, ABSTAIN, 1, ABSTAIN];
        // union = 3 (rows 0,1,2), agree = 1 (row 0).
        assert!((consensus(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn consensus_counts_disagreeing_overlap_as_union_only() {
        let a = vec![1, 0];
        let b = vec![1, 1];
        // Row 1 overlaps but disagrees.
        assert!((consensus(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn consensus_identical_columns_is_one() {
        let a = vec![1, ABSTAIN, 0];
        assert_eq!(consensus(&a, &a), 1.0);
    }

    #[test]
    fn consensus_disjoint_or_empty_is_zero() {
        assert_eq!(consensus(&[1, ABSTAIN], &[ABSTAIN, 1]), 0.0);
        assert_eq!(consensus(&[ABSTAIN, ABSTAIN], &[ABSTAIN, ABSTAIN]), 0.0);
    }

    #[test]
    fn consensus_is_symmetric() {
        let a = vec![1, 1, ABSTAIN, 0, ABSTAIN];
        let b = vec![1, ABSTAIN, 0, 0, ABSTAIN];
        assert_eq!(consensus(&a, &b), consensus(&b, &a));
    }
}
