//! The iterative DataSculpt loop (Figure 1).

use crate::consistency::aggregate_consistency;
use crate::filter::FilterConfig;
use crate::icl::{IclSelector, IclStrategy};
use crate::lf::KeywordLf;
use crate::lfset::LfSet;
use crate::parse::parse_response;
use crate::prompt;
pub use crate::prompt::PromptStyle;
use crate::sampler::{make_sampler, SamplerKind};
use datasculpt_data::TextDataset;
use datasculpt_llm::{ChatModel, UsageLedger};
use std::collections::HashSet;

/// Configuration of one DataSculpt run (§4.1 defaults).
#[derive(Debug, Clone, Copy)]
pub struct DataSculptConfig {
    /// Number of query iterations (the paper uses 50).
    pub num_queries: usize,
    /// LLM samples per query (1, or 10 for self-consistency).
    pub samples_per_query: usize,
    /// Prompt template style.
    pub style: PromptStyle,
    /// In-context example selection strategy.
    pub icl_strategy: IclStrategy,
    /// Number of in-context examples (the paper uses 10).
    pub n_icl: usize,
    /// Sampling temperature (the paper uses 0.7).
    pub temperature: f64,
    /// LF filters.
    pub filters: FilterConfig,
    /// Query-instance sampler.
    pub sampler: SamplerKind,
    /// LF revision (§5 future work, off by default): when a candidate LF
    /// fails the accuracy filter, re-prompt the LLM once for a more
    /// specific phrase from the same passage and offer the revision to the
    /// filters.
    pub revise_rejected: bool,
    /// Run seed (drives the sampler and exemplar choice; the LLM has its
    /// own seed).
    pub seed: u64,
}

impl DataSculptConfig {
    /// DataSculpt-Base: plain few-shot prompt, one sample per query.
    pub fn base(seed: u64) -> Self {
        Self {
            num_queries: 50,
            samples_per_query: 1,
            style: PromptStyle::Base,
            icl_strategy: IclStrategy::ClassBalanced,
            n_icl: 10,
            temperature: 0.7,
            filters: FilterConfig::all(),
            sampler: SamplerKind::Random,
            revise_rejected: false,
            seed,
        }
    }

    /// DataSculpt-CoT: chain-of-thought prompt.
    pub fn cot(seed: u64) -> Self {
        Self {
            style: PromptStyle::CoT,
            ..Self::base(seed)
        }
    }

    /// DataSculpt-SC: CoT + self-consistency over 10 samples.
    pub fn sc(seed: u64) -> Self {
        Self {
            samples_per_query: 10,
            ..Self::cot(seed)
        }
    }

    /// DataSculpt-KATE: SC + KATE in-context example selection.
    pub fn kate(seed: u64) -> Self {
        Self {
            icl_strategy: IclStrategy::Kate,
            ..Self::sc(seed)
        }
    }

    /// Display label used in Table 2.
    pub fn label(&self) -> &'static str {
        match (self.icl_strategy, self.samples_per_query, self.style) {
            (IclStrategy::Kate, _, _) => "DataSculpt-KATE",
            (_, n, _) if n > 1 => "DataSculpt-SC",
            (_, _, PromptStyle::CoT) => "DataSculpt-CoT",
            _ => "DataSculpt-Base",
        }
    }
}

/// What happened in one query iteration (diagnostics).
#[derive(Debug, Clone)]
pub struct IterationLog {
    /// Train-split index of the queried instance.
    pub instance_id: usize,
    /// Aggregated predicted label (`None` when every sample was unusable).
    pub label: Option<usize>,
    /// Aggregated keywords.
    pub keywords: Vec<String>,
    /// Candidate LFs accepted this iteration.
    pub accepted: usize,
    /// Candidate LFs rejected this iteration.
    pub rejected: usize,
}

/// The outcome of a DataSculpt run.
#[derive(Debug)]
pub struct RunResult {
    /// The accumulated, filtered LF set.
    pub lf_set: LfSet,
    /// Token usage across all LLM calls (LF generation + KATE annotation).
    pub ledger: UsageLedger,
    /// Per-iteration diagnostics.
    pub iterations: Vec<IterationLog>,
}

/// The DataSculpt framework: ties the sampler, prompt builder, LLM, parser,
/// self-consistency aggregation, and LF filters into the iterative loop of
/// Figure 1.
pub struct DataSculpt<'a> {
    dataset: &'a TextDataset,
    config: DataSculptConfig,
}

impl<'a> DataSculpt<'a> {
    /// Set up a run over a dataset.
    pub fn new(dataset: &'a TextDataset, config: DataSculptConfig) -> Self {
        assert!(config.num_queries > 0, "need at least one query");
        assert!(config.samples_per_query > 0, "need at least one sample");
        Self { dataset, config }
    }

    /// Execute the full run against a chat model.
    pub fn run<M: ChatModel>(&self, llm: &mut M) -> RunResult {
        let cfg = &self.config;
        let mut lf_set = LfSet::new(self.dataset, cfg.filters);
        let mut ledger = UsageLedger::new();
        let mut icl = IclSelector::new(self.dataset, cfg.icl_strategy, cfg.n_icl, cfg.seed);
        let mut sampler = make_sampler(cfg.sampler, self.dataset, cfg.seed);
        let mut queried: HashSet<usize> = HashSet::with_capacity(cfg.num_queries);
        let mut iterations = Vec::with_capacity(cfg.num_queries);
        let n_classes = self.dataset.n_classes();
        let relation = self.dataset.spec.relation;

        for _ in 0..cfg.num_queries {
            let Some(idx) = sampler.select(self.dataset, &lf_set, &queried) else {
                break; // unlabeled pool exhausted
            };
            queried.insert(idx);
            let instance = &self.dataset.train.instances[idx];

            // Build the prompt (Figure 2) and query the LLM.
            let exemplars = icl.select(self.dataset, instance, llm, &mut ledger);
            let messages = prompt::build_messages(
                &self.dataset.spec,
                cfg.style,
                &exemplars,
                &instance.prompt_text(),
            );
            let response = llm.complete(&prompt::request(
                messages,
                cfg.temperature,
                cfg.samples_per_query,
            ));
            ledger.record(response.model, response.usage);

            // Parse all samples and aggregate by self-consistency.
            let parsed: Vec<_> = response
                .choices
                .iter()
                .map(|c| parse_response(&c.content, n_classes))
                .collect();
            let Some((label, keywords)) = aggregate_consistency(&parsed, n_classes) else {
                iterations.push(IterationLog {
                    instance_id: idx,
                    label: None,
                    keywords: Vec::new(),
                    accepted: 0,
                    rejected: 0,
                });
                continue;
            };

            // Convert keywords to LFs (entity-anchored variants for
            // relation tasks, §3.1) and filter (§3.5).
            let mut accepted = 0usize;
            let mut rejected = 0usize;
            let mut accuracy_rejected: Vec<KeywordLf> = Vec::new();
            for kw in &keywords {
                let mut candidates = vec![KeywordLf::new(kw.clone(), label)];
                if relation {
                    candidates.push(KeywordLf::anchored(kw.clone(), label));
                }
                for lf in candidates {
                    match lf_set.try_add(lf.clone()) {
                        outcome if outcome.accepted() => accepted += 1,
                        crate::filter::AddOutcome::RejectedAccuracy => {
                            rejected += 1;
                            accuracy_rejected.push(lf);
                        }
                        _ => rejected += 1,
                    }
                }
            }

            // LF revision (§5 future work): one more round-trip per
            // accuracy-rejected candidate, asking for a more specific
            // phrase from the same passage.
            if cfg.revise_rejected {
                for lf in accuracy_rejected.into_iter().take(3) {
                    let messages = prompt::revision_messages(
                        &self.dataset.spec,
                        &instance.prompt_text(),
                        &lf.keyword,
                        lf.label,
                    );
                    let resp = llm.complete(&prompt::request(messages, cfg.temperature, 1));
                    ledger.record(resp.model, resp.usage);
                    let parsed = parse_response(&resp.choices[0].content, n_classes);
                    for kw in parsed.keywords {
                        let mut candidates = vec![KeywordLf::new(kw.clone(), lf.label)];
                        if relation {
                            candidates.push(KeywordLf::anchored(kw, lf.label));
                        }
                        for revised in candidates {
                            if lf_set.try_add(revised).accepted() {
                                accepted += 1;
                            } else {
                                rejected += 1;
                            }
                        }
                    }
                }
            }
            iterations.push(IterationLog {
                instance_id: idx,
                label: Some(label),
                keywords,
                accepted,
                rejected,
            });
        }

        RunResult {
            lf_set,
            ledger,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasculpt_data::DatasetName;
    use datasculpt_llm::{ModelId, SimulatedLlm};

    fn run_config(dataset: &TextDataset, cfg: DataSculptConfig) -> RunResult {
        let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, dataset.generative.clone(), 13);
        DataSculpt::new(dataset, cfg).run(&mut llm)
    }

    #[test]
    fn base_run_generates_filtered_lfs() {
        let d = DatasetName::Youtube.load_scaled(21, 0.1);
        let mut cfg = DataSculptConfig::base(5);
        cfg.num_queries = 25;
        let result = run_config(&d, cfg);
        assert!(
            result.lf_set.len() >= 10,
            "expected a nontrivial LF set, got {}",
            result.lf_set.len()
        );
        assert_eq!(result.iterations.len(), 25);
        assert!(result.ledger.calls() >= 25);
        assert!(result.ledger.total_usage().total() > 0);
        // No duplicate LFs in the accepted set.
        let mut seen = std::collections::HashSet::new();
        for lf in result.lf_set.lfs() {
            assert!(seen.insert((lf.keyword.clone(), lf.label, lf.anchored)));
        }
    }

    #[test]
    fn sc_produces_larger_set_than_base() {
        let d = DatasetName::Imdb.load_scaled(22, 0.02);
        let mut base_cfg = DataSculptConfig::base(5);
        base_cfg.num_queries = 20;
        let mut sc_cfg = DataSculptConfig::sc(5);
        sc_cfg.num_queries = 20;
        let base = run_config(&d, base_cfg);
        let sc = run_config(&d, sc_cfg);
        assert!(
            sc.lf_set.len() > base.lf_set.len(),
            "SC {} should beat Base {} (Table 2 shape)",
            sc.lf_set.len(),
            base.lf_set.len()
        );
        // And costs proportionally more completion tokens.
        assert!(
            sc.ledger.total_usage().completion_tokens
                > base.ledger.total_usage().completion_tokens * 3
        );
    }

    #[test]
    fn runs_are_deterministic_under_seed() {
        let d = DatasetName::Youtube.load_scaled(21, 0.1);
        let mut cfg = DataSculptConfig::cot(9);
        cfg.num_queries = 10;
        let a = run_config(&d, cfg);
        let b = run_config(&d, cfg);
        assert_eq!(a.lf_set.len(), b.lf_set.len());
        let names_a: Vec<_> = a.lf_set.lfs().iter().map(|l| l.name()).collect();
        let names_b: Vec<_> = b.lf_set.lfs().iter().map(|l| l.name()).collect();
        assert_eq!(names_a, names_b);
        assert_eq!(
            a.ledger.total_usage().prompt_tokens,
            b.ledger.total_usage().prompt_tokens
        );
    }

    #[test]
    fn relation_task_emits_anchored_lfs() {
        let d = DatasetName::Spouse.load_scaled(8, 0.02);
        let mut cfg = DataSculptConfig::sc(3);
        cfg.num_queries = 20;
        let result = run_config(&d, cfg);
        // At least some accepted LFs should exist; anchored variants are
        // offered for every keyword.
        let total_offered: usize = result
            .iterations
            .iter()
            .map(|it| it.accepted + it.rejected)
            .sum();
        assert!(total_offered > 0, "no candidates at all");
        assert!(
            result.lf_set.lfs().iter().any(|l| !l.keyword.is_empty()),
            "no LFs accepted"
        );
    }

    #[test]
    fn revision_recovers_extra_lfs() {
        // With a weak model (lots of accuracy rejections) and revision on,
        // the revised phrases should win back some LFs — and cost extra
        // tokens.
        let d = DatasetName::Imdb.load_scaled(27, 0.03);
        let run_with = |revise: bool| {
            let mut llm =
                SimulatedLlm::new(ModelId::Llama2Chat13b, d.generative.clone(), 17);
            let mut cfg = DataSculptConfig::base(4);
            cfg.num_queries = 25;
            cfg.revise_rejected = revise;
            DataSculpt::new(&d, cfg).run(&mut llm)
        };
        let plain = run_with(false);
        let revised = run_with(true);
        assert!(
            revised.lf_set.len() >= plain.lf_set.len(),
            "revision should not shrink the set: {} vs {}",
            revised.lf_set.len(),
            plain.lf_set.len()
        );
        assert!(
            revised.ledger.total_usage().total() > plain.ledger.total_usage().total(),
            "revision consumes extra tokens"
        );
    }

    #[test]
    fn preset_labels() {
        assert_eq!(DataSculptConfig::base(0).label(), "DataSculpt-Base");
        assert_eq!(DataSculptConfig::cot(0).label(), "DataSculpt-CoT");
        assert_eq!(DataSculptConfig::sc(0).label(), "DataSculpt-SC");
        assert_eq!(DataSculptConfig::kate(0).label(), "DataSculpt-KATE");
    }

    #[test]
    fn exhausted_pool_stops_early() {
        let d = DatasetName::Youtube.load_scaled(21, 0.011); // ~17 train docs
        let mut cfg = DataSculptConfig::base(1);
        cfg.num_queries = 100;
        let result = run_config(&d, cfg);
        assert!(result.iterations.len() <= d.train.len());
    }
}
