//! The iterative DataSculpt loop (Figure 1), decomposed into stages.
//!
//! One query iteration runs five explicit stages over a shared
//! [`RunContext`]:
//!
//! 1. [`RunContext::select_query`] — pick the next unlabeled instance
//!    (§3.4),
//! 2. [`RunContext::build_prompt`] — choose in-context examples and render
//!    the Figure 2 prompt (§3.3),
//! 3. [`RunContext::generate`] — query the LLM, parse every sample, and
//!    aggregate by self-consistency (§4.1),
//! 4. [`RunContext::integrate`] — convert keywords to candidate LFs and
//!    run the validity / accuracy / redundancy filters (§3.5),
//! 5. [`RunContext::revise`] — optionally re-prompt for accuracy-rejected
//!    candidates (§5).
//!
//! LLM calls are fallible: an iteration that hits an [`LlmError`] is
//! recorded in its [`IterationLog`] and skipped, and the run aborts with
//! [`PipelineError::TooManyFailures`] only after
//! [`DataSculptConfig::max_consecutive_failures`] failed iterations in a
//! row.

use crate::consistency::aggregate_consistency;
use crate::filter::FilterConfig;
use crate::icl::{IclSelector, IclStrategy};
use crate::lf::KeywordLf;
use crate::lfset::LfSet;
use crate::observe::{self, Counter, Event, NoopObserver, OutcomeTally, RunObserver, Stage};
use crate::parse::parse_response;
use crate::prompt;
pub use crate::prompt::PromptStyle;
use crate::sampler::{make_sampler, QuerySampler, SamplerKind};
use datasculpt_data::TextDataset;
use datasculpt_llm::{ChatMessage, ChatModel, LlmError, UsageLedger};
use std::collections::BTreeSet;

/// Why a DataSculpt run aborted instead of producing a [`RunResult`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// `limit` consecutive query iterations failed with LLM errors.
    TooManyFailures {
        /// The configured consecutive-failure limit.
        limit: usize,
        /// The error that tripped the limit.
        last: LlmError,
    },
    /// The attached [`CheckpointSink`] rejected an iteration snapshot
    /// (a persistence failure, or a resume-verification divergence).
    Checkpoint {
        /// 0-based iteration whose snapshot was rejected.
        iter: u64,
        /// The sink's error description.
        message: String,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::TooManyFailures { limit, last } => {
                write!(
                    f,
                    "{limit} consecutive iterations failed; last error: {last}"
                )
            }
            PipelineError::Checkpoint { iter, message } => {
                write!(f, "checkpoint sink failed at iteration {iter}: {message}")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::TooManyFailures { last, .. } => Some(last),
            PipelineError::Checkpoint { .. } => None,
        }
    }
}

/// Configuration of one DataSculpt run (§4.1 defaults).
#[derive(Debug, Clone, Copy)]
pub struct DataSculptConfig {
    /// Number of query iterations (the paper uses 50).
    pub num_queries: usize,
    /// LLM samples per query (1, or 10 for self-consistency).
    pub samples_per_query: usize,
    /// Prompt template style.
    pub style: PromptStyle,
    /// In-context example selection strategy.
    pub icl_strategy: IclStrategy,
    /// Number of in-context examples (the paper uses 10).
    pub n_icl: usize,
    /// Sampling temperature (the paper uses 0.7).
    pub temperature: f64,
    /// LF filters.
    pub filters: FilterConfig,
    /// Query-instance sampler.
    pub sampler: SamplerKind,
    /// LF revision (§5 future work, off by default): when a candidate LF
    /// fails the accuracy filter, re-prompt the LLM once for a more
    /// specific phrase from the same passage and offer the revision to the
    /// filters.
    pub revise_rejected: bool,
    /// Abort the run after this many consecutive iterations fail with LLM
    /// errors. Failed iterations below the limit are logged and skipped.
    pub max_consecutive_failures: usize,
    /// Run seed (drives the sampler and exemplar choice; the LLM has its
    /// own seed).
    pub seed: u64,
    /// Worker threads for the LF-set vote-column loops (1 = serial). Any
    /// value produces the same digest — parallelism never changes results.
    pub threads: usize,
}

impl DataSculptConfig {
    /// DataSculpt-Base: plain few-shot prompt, one sample per query.
    pub fn base(seed: u64) -> Self {
        Self {
            num_queries: 50,
            samples_per_query: 1,
            style: PromptStyle::Base,
            icl_strategy: IclStrategy::ClassBalanced,
            n_icl: 10,
            temperature: 0.7,
            filters: FilterConfig::all(),
            sampler: SamplerKind::Random,
            revise_rejected: false,
            max_consecutive_failures: 3,
            seed,
            threads: 1,
        }
    }

    /// DataSculpt-CoT: chain-of-thought prompt.
    pub fn cot(seed: u64) -> Self {
        Self {
            style: PromptStyle::CoT,
            ..Self::base(seed)
        }
    }

    /// DataSculpt-SC: CoT + self-consistency over 10 samples.
    pub fn sc(seed: u64) -> Self {
        Self {
            samples_per_query: 10,
            ..Self::cot(seed)
        }
    }

    /// DataSculpt-KATE: SC + KATE in-context example selection.
    pub fn kate(seed: u64) -> Self {
        Self {
            icl_strategy: IclStrategy::Kate,
            ..Self::sc(seed)
        }
    }

    /// Display label used in Table 2.
    pub fn label(&self) -> &'static str {
        match (self.icl_strategy, self.samples_per_query, self.style) {
            (IclStrategy::Kate, _, _) => "DataSculpt-KATE",
            (_, n, _) if n > 1 => "DataSculpt-SC",
            (_, _, PromptStyle::CoT) => "DataSculpt-CoT",
            _ => "DataSculpt-Base",
        }
    }
}

/// What happened in one query iteration (diagnostics).
#[derive(Debug, Clone)]
pub struct IterationLog {
    /// Train-split index of the queried instance.
    pub instance_id: usize,
    /// Aggregated predicted label (`None` when every sample was unusable).
    pub label: Option<usize>,
    /// Aggregated keywords.
    pub keywords: Vec<String>,
    /// Candidate LFs accepted this iteration.
    pub accepted: usize,
    /// Candidate LFs rejected this iteration.
    pub rejected: usize,
    /// The LLM error that cut this iteration short, if any. LFs accepted
    /// before the error (e.g. when only the revision call failed) stay in
    /// the set; `accepted`/`rejected` count them.
    pub error: Option<LlmError>,
}

impl IterationLog {
    fn failed(instance_id: usize, error: LlmError) -> Self {
        IterationLog {
            instance_id,
            label: None,
            keywords: Vec::new(),
            accepted: 0,
            rejected: 0,
            error: Some(error),
        }
    }
}

/// The outcome of a DataSculpt run.
#[derive(Debug)]
pub struct RunResult {
    /// The accumulated, filtered LF set.
    pub lf_set: LfSet,
    /// Token usage across all LLM calls (LF generation + KATE annotation).
    pub ledger: UsageLedger,
    /// Per-iteration diagnostics.
    pub iterations: Vec<IterationLog>,
}

impl RunResult {
    /// Iterations that hit an LLM error and were skipped.
    pub fn failed_iterations(&self) -> usize {
        self.iterations
            .iter()
            .filter(|it| it.error.is_some())
            .count()
    }

    /// Order-stable FNV-1a digest of everything the determinism contract
    /// promises: the accepted LF set, the per-model token ledger, and every
    /// iteration's outcome. Two runs with the same dataset, config, and
    /// seeds must produce equal digests — any divergence is a
    /// reproducibility bug (see `lint.toml`, rule `hash-order`).
    pub fn digest(&self) -> u64 {
        run_state_digest(&self.lf_set, &self.ledger, &self.iterations)
    }
}

/// The [`RunResult::digest`] function applied to mid-run state: the digest
/// of the run as it stands after some prefix of its iterations. Durable
/// runs checkpoint this per iteration, so a resume can verify — iteration
/// by iteration — that its replay reproduces the crashed run exactly.
pub fn run_state_digest(lf_set: &LfSet, ledger: &UsageLedger, iterations: &[IterationLog]) -> u64 {
    let mut d = Fnv::new();
    d.eat_usize(lf_set.len());
    for lf in lf_set.lfs() {
        d.eat(lf.keyword.as_bytes());
        d.eat_usize(lf.label);
        d.eat(&[u8::from(lf.anchored)]);
    }
    d.eat_usize(ledger.calls() as usize);
    for (model, usage) in ledger.per_model() {
        d.eat(model.api_name().as_bytes());
        d.eat(&usage.prompt_tokens.to_le_bytes());
        d.eat(&usage.completion_tokens.to_le_bytes());
    }
    d.eat_usize(iterations.len());
    for it in iterations {
        d.eat_usize(it.instance_id);
        d.eat_usize(it.label.map_or(usize::MAX, |l| l));
        for kw in &it.keywords {
            d.eat(kw.as_bytes());
        }
        d.eat_usize(it.accepted);
        d.eat_usize(it.rejected);
        d.eat(&[u8::from(it.error.is_some())]);
    }
    d.finish()
}

/// One iteration's durable snapshot, handed to a [`CheckpointSink`] after
/// the iteration completes (successfully or not).
///
/// The snapshot is a *verifiable summary*, not a serialized `RunContext`:
/// resume replays the run from iteration 0 against the durable response
/// store (so sampler/ICL/LLM state never needs serializing) and checks
/// each replayed iteration against `state_digest`. See
/// `docs/persistence.md` for the full contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationCheckpoint {
    /// 0-based iteration index.
    pub iter: u64,
    /// [`run_state_digest`] over the run state after this iteration.
    pub state_digest: u64,
    /// Accepted LFs so far.
    pub lfs: u64,
    /// Recorded LLM calls so far.
    pub calls: u64,
    /// Exact cumulative cost so far, in nano-USD.
    pub cost_nanousd: u128,
    /// Whether this iteration failed with an LLM error.
    pub failed: bool,
}

/// Receives one [`IterationCheckpoint`] per completed iteration of a
/// durable run ([`DataSculpt::run_durable`]).
///
/// Returning `Err` aborts the run with [`PipelineError::Checkpoint`]: a
/// sink that cannot persist (or that detects a resume divergence) must
/// stop the run rather than let it continue un-checkpointed.
pub trait CheckpointSink {
    /// Persist or verify one iteration snapshot.
    fn on_iteration(&mut self, snapshot: &IterationCheckpoint) -> Result<(), String>;
}

/// Incremental FNV-1a hasher for [`RunResult::digest`].
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn eat(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn eat_usize(&mut self, v: usize) {
        self.eat(&(v as u64).to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Outcome of the LF-integration stage for one iteration.
struct Integration {
    accepted: usize,
    rejected: usize,
    /// Candidates that failed the accuracy filter (revision targets).
    accuracy_rejected: Vec<KeywordLf>,
}

/// Mutable state shared by the pipeline stages of one run.
struct RunContext<'d, 'o> {
    dataset: &'d TextDataset,
    cfg: DataSculptConfig,
    lf_set: LfSet,
    ledger: UsageLedger,
    icl: IclSelector,
    sampler: Box<dyn QuerySampler>,
    queried: BTreeSet<usize>,
    iterations: Vec<IterationLog>,
    /// Write-only event stream; nothing observed here may feed back into
    /// the run (the digest tests enforce this).
    obs: &'o mut dyn RunObserver,
}

impl<'d, 'o> RunContext<'d, 'o> {
    fn new(dataset: &'d TextDataset, cfg: DataSculptConfig, obs: &'o mut dyn RunObserver) -> Self {
        RunContext {
            dataset,
            cfg,
            lf_set: LfSet::new(dataset, cfg.filters)
                .with_pool(datasculpt_exec::Pool::new(cfg.threads)),
            ledger: UsageLedger::new(),
            icl: IclSelector::new(dataset, cfg.icl_strategy, cfg.n_icl, cfg.seed),
            sampler: make_sampler(cfg.sampler, dataset, cfg.seed),
            queried: BTreeSet::new(),
            iterations: Vec::with_capacity(cfg.num_queries),
            obs,
        }
    }

    fn stage_begin(&mut self, iter: u64, stage: Stage) {
        self.obs.on_event(&Event::StageBegin { iter, stage });
    }

    fn stage_end(&mut self, iter: u64, stage: Stage) {
        self.obs.on_event(&Event::StageEnd { iter, stage });
    }

    /// Stage 1 (§3.4): pick the next query instance, or `None` when the
    /// unlabeled pool is exhausted. The instance counts as queried even if
    /// a later stage fails.
    fn select_query(&mut self) -> Option<usize> {
        let idx = self
            .sampler
            .select(self.dataset, &self.lf_set, &self.queried)?;
        self.queried.insert(idx);
        Some(idx)
    }

    /// Stage 2 (§3.3, Figure 2): choose in-context examples (KATE may call
    /// the LLM) and render the prompt for instance `idx`.
    fn build_prompt<M: ChatModel>(
        &mut self,
        llm: &mut M,
        idx: usize,
    ) -> Result<Vec<ChatMessage>, LlmError> {
        let Some(instance) = self.dataset.train.instances.get(idx) else {
            return Err(LlmError::EmptyResponse);
        };
        let exemplars = self
            .icl
            .select(self.dataset, instance, llm, &mut self.ledger, self.obs)?;
        Ok(prompt::build_messages(
            &self.dataset.spec,
            self.cfg.style,
            &exemplars,
            &instance.prompt_text(),
        ))
    }

    /// Stage 3 (§4.1): run the chat completion, parse every sample, and
    /// aggregate by self-consistency majority vote. `Ok(None)` means every
    /// sample was unusable.
    fn generate<M: ChatModel>(
        &mut self,
        llm: &mut M,
        messages: Vec<ChatMessage>,
    ) -> Result<Option<(usize, Vec<String>)>, LlmError> {
        let response = llm.complete(&prompt::request(
            messages,
            self.cfg.temperature,
            self.cfg.samples_per_query,
        ))?;
        observe::record_usage(&mut self.ledger, self.obs, response.model, response.usage);
        let n_classes = self.dataset.n_classes();
        let parsed: Vec<_> = response
            .choices
            .iter()
            .map(|c| parse_response(&c.content, n_classes))
            .collect();
        let unusable = parsed.iter().filter(|p| !p.is_usable()).count();
        observe::count(self.obs, Counter::ParseFailure, unusable as u64);
        Ok(aggregate_consistency(&parsed, n_classes))
    }

    /// Stage 4 (§3.5): turn the aggregated keywords into candidate LFs
    /// (entity-anchored variants for relation tasks, §3.1) and offer each
    /// to the filters.
    fn integrate(&mut self, label: usize, keywords: &[String]) -> Integration {
        let relation = self.dataset.spec.relation;
        let mut out = Integration {
            accepted: 0,
            rejected: 0,
            accuracy_rejected: Vec::new(),
        };
        let mut tally = OutcomeTally::default();
        for kw in keywords {
            let mut candidates = vec![KeywordLf::new(kw.clone(), label)];
            if relation {
                candidates.push(KeywordLf::anchored(kw.clone(), label));
            }
            for lf in candidates {
                let outcome = self.lf_set.try_add(lf.clone());
                tally.note(outcome);
                match outcome {
                    outcome if outcome.accepted() => out.accepted += 1,
                    crate::filter::AddOutcome::RejectedAccuracy => {
                        out.rejected += 1;
                        out.accuracy_rejected.push(lf);
                    }
                    _ => out.rejected += 1,
                }
            }
        }
        tally.emit(self.obs);
        out
    }

    /// Stage 5 (§5 future work): one more round-trip per accuracy-rejected
    /// candidate, asking for a more specific phrase from the same passage.
    /// Updates the accepted/rejected counts in place.
    fn revise<M: ChatModel>(
        &mut self,
        llm: &mut M,
        idx: usize,
        integration: &mut Integration,
    ) -> Result<(), LlmError> {
        let relation = self.dataset.spec.relation;
        let n_classes = self.dataset.n_classes();
        let Some(instance) = self.dataset.train.instances.get(idx) else {
            return Ok(());
        };
        let mut tally = OutcomeTally::default();
        for lf in std::mem::take(&mut integration.accuracy_rejected)
            .into_iter()
            .take(3)
        {
            let messages = prompt::revision_messages(
                &self.dataset.spec,
                &instance.prompt_text(),
                &lf.keyword,
                lf.label,
            );
            let result = llm.complete(&prompt::request(messages, self.cfg.temperature, 1));
            let resp = match result {
                Ok(resp) => resp,
                Err(e) => {
                    // Flush outcome counters for the revisions that did
                    // complete before surfacing the error.
                    tally.emit(self.obs);
                    return Err(e);
                }
            };
            observe::count(self.obs, Counter::Revision, 1);
            observe::record_usage(&mut self.ledger, self.obs, resp.model, resp.usage);
            let content = match resp.choices.first().map(|c| c.content.as_str()) {
                Some(c) => c,
                None => {
                    tally.emit(self.obs);
                    return Err(LlmError::EmptyResponse);
                }
            };
            let parsed = parse_response(content, n_classes);
            for kw in parsed.keywords {
                let mut candidates = vec![KeywordLf::new(kw.clone(), lf.label)];
                if relation {
                    candidates.push(KeywordLf::anchored(kw, lf.label));
                }
                for revised in candidates {
                    let outcome = self.lf_set.try_add(revised);
                    tally.note(outcome);
                    if outcome.accepted() {
                        integration.accepted += 1;
                    } else {
                        integration.rejected += 1;
                    }
                }
            }
        }
        tally.emit(self.obs);
        Ok(())
    }

    /// Run stages 2–5 for instance `idx` as iteration `iter`, bracketing
    /// each stage with span events (ends fire on error paths too). A
    /// returned log with `error` set marks the iteration as failed.
    fn run_iteration<M: ChatModel>(&mut self, llm: &mut M, iter: u64, idx: usize) -> IterationLog {
        self.stage_begin(iter, Stage::Prompt);
        let messages = self.build_prompt(llm, idx);
        self.stage_end(iter, Stage::Prompt);
        let messages = match messages {
            Ok(m) => m,
            Err(e) => return IterationLog::failed(idx, e),
        };
        self.stage_begin(iter, Stage::Generate);
        let aggregated = self.generate(llm, messages);
        self.stage_end(iter, Stage::Generate);
        let aggregated = match aggregated {
            Ok(a) => a,
            Err(e) => return IterationLog::failed(idx, e),
        };
        let Some((label, keywords)) = aggregated else {
            return IterationLog {
                instance_id: idx,
                label: None,
                keywords: Vec::new(),
                accepted: 0,
                rejected: 0,
                error: None,
            };
        };
        self.stage_begin(iter, Stage::Integrate);
        let mut integration = self.integrate(label, &keywords);
        self.stage_end(iter, Stage::Integrate);
        let mut error = None;
        if self.cfg.revise_rejected {
            // A failed revision keeps the LFs accepted so far but marks
            // the iteration as failed.
            self.stage_begin(iter, Stage::Revise);
            error = self.revise(llm, idx, &mut integration).err();
            self.stage_end(iter, Stage::Revise);
        }
        IterationLog {
            instance_id: idx,
            label: Some(label),
            keywords,
            accepted: integration.accepted,
            rejected: integration.rejected,
            error,
        }
    }

    /// Close the run span (fires on both the success and abort paths).
    fn emit_run_end(&mut self) {
        let failed = self
            .iterations
            .iter()
            .filter(|it| it.error.is_some())
            .count();
        self.obs.on_event(&Event::RunEnd {
            iterations: self.iterations.len() as u64,
            failed: failed as u64,
            lfs: self.lf_set.len() as u64,
        });
    }

    fn finish(self) -> RunResult {
        RunResult {
            lf_set: self.lf_set,
            ledger: self.ledger,
            iterations: self.iterations,
        }
    }
}

/// The DataSculpt framework: ties the sampler, prompt builder, LLM, parser,
/// self-consistency aggregation, and LF filters into the iterative loop of
/// Figure 1.
pub struct DataSculpt<'a> {
    dataset: &'a TextDataset,
    config: DataSculptConfig,
}

impl<'a> DataSculpt<'a> {
    /// Set up a run over a dataset.
    pub fn new(dataset: &'a TextDataset, config: DataSculptConfig) -> Self {
        assert!(config.num_queries > 0, "need at least one query");
        assert!(config.samples_per_query > 0, "need at least one sample");
        assert!(
            config.max_consecutive_failures > 0,
            "need a nonzero failure limit"
        );
        Self { dataset, config }
    }

    /// Execute the full run against a chat model, unobserved.
    ///
    /// Iterations that fail with an [`LlmError`] are logged and skipped;
    /// the run only aborts after
    /// [`DataSculptConfig::max_consecutive_failures`] failures in a row.
    pub fn run<M: ChatModel>(&self, llm: &mut M) -> Result<RunResult, PipelineError> {
        self.run_observed(llm, &mut NoopObserver)
    }

    /// Execute the full run, streaming typed events into `obs`.
    ///
    /// Observation is strictly write-only: an observed run produces a
    /// [`RunResult`] with a digest identical to the same-seed unobserved
    /// run. Every iteration emits a `select` stage span, then (for a
    /// non-exhausted pool) an iteration span wrapping the `prompt`,
    /// `generate`, `integrate`, and (when enabled) `revise` stage spans,
    /// plus counter and usage events. A `run_end` event fires on both the
    /// success and the [`PipelineError::TooManyFailures`] abort path.
    pub fn run_observed<M: ChatModel>(
        &self,
        llm: &mut M,
        obs: &mut dyn RunObserver,
    ) -> Result<RunResult, PipelineError> {
        self.run_inner(llm, obs, None)
    }

    /// Execute the full run, streaming one [`IterationCheckpoint`] per
    /// completed iteration into `sink` (in addition to the event stream).
    ///
    /// The sink is called after the iteration's `iter_end` event, with the
    /// cumulative [`run_state_digest`] — the hook a durable store uses to
    /// persist resumable state. A sink error aborts the run with
    /// [`PipelineError::Checkpoint`]. The sink is write-only with respect
    /// to the run: a sinked run produces a digest identical to the
    /// same-seed plain run.
    pub fn run_durable<M: ChatModel>(
        &self,
        llm: &mut M,
        obs: &mut dyn RunObserver,
        sink: &mut dyn CheckpointSink,
    ) -> Result<RunResult, PipelineError> {
        self.run_inner(llm, obs, Some(sink))
    }

    fn run_inner<M: ChatModel>(
        &self,
        llm: &mut M,
        obs: &mut dyn RunObserver,
        mut sink: Option<&mut dyn CheckpointSink>,
    ) -> Result<RunResult, PipelineError> {
        obs.on_event(&Event::RunBegin {
            label: self.config.label().to_string(),
            dataset: self.dataset.spec.name.to_string(),
            model: llm.model_id().api_name().to_string(),
            queries: self.config.num_queries as u64,
            seed: self.config.seed,
        });
        let mut ctx = RunContext::new(self.dataset, self.config, obs);
        let mut consecutive_failures = 0usize;
        for _ in 0..self.config.num_queries {
            let iter = ctx.iterations.len() as u64;
            ctx.stage_begin(iter, Stage::Select);
            let selected = ctx.select_query();
            ctx.stage_end(iter, Stage::Select);
            let Some(idx) = selected else {
                break; // unlabeled pool exhausted
            };
            ctx.obs.on_event(&Event::IterationBegin {
                iter,
                instance: idx as u64,
            });
            let log = ctx.run_iteration(llm, iter, idx);
            let error = log.error.clone();
            if error.is_some() {
                observe::count(ctx.obs, Counter::LlmError, 1);
            }
            ctx.obs.on_event(&Event::IterationEnd {
                iter,
                accepted: log.accepted as u64,
                rejected: log.rejected as u64,
                failed: error.is_some(),
            });
            ctx.iterations.push(log);
            if let Some(sink) = sink.as_deref_mut() {
                let snapshot = IterationCheckpoint {
                    iter,
                    state_digest: run_state_digest(&ctx.lf_set, &ctx.ledger, &ctx.iterations),
                    lfs: ctx.lf_set.len() as u64,
                    calls: ctx.ledger.calls(),
                    cost_nanousd: ctx.ledger.total_cost_nanousd(),
                    failed: error.is_some(),
                };
                if let Err(message) = sink.on_iteration(&snapshot) {
                    ctx.emit_run_end();
                    return Err(PipelineError::Checkpoint { iter, message });
                }
            }
            match error {
                Some(last) => {
                    consecutive_failures += 1;
                    if consecutive_failures >= self.config.max_consecutive_failures {
                        ctx.emit_run_end();
                        return Err(PipelineError::TooManyFailures {
                            limit: self.config.max_consecutive_failures,
                            last,
                        });
                    }
                }
                None => consecutive_failures = 0,
            }
        }
        ctx.emit_run_end();
        Ok(ctx.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasculpt_data::DatasetName;
    use datasculpt_llm::{FailingModel, ModelId, SimulatedLlm};

    fn run_config(dataset: &TextDataset, cfg: DataSculptConfig) -> RunResult {
        let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, dataset.generative.clone(), 13);
        DataSculpt::new(dataset, cfg).run(&mut llm).expect("run")
    }

    #[test]
    fn base_run_generates_filtered_lfs() {
        let d = DatasetName::Youtube.load_scaled(21, 0.1);
        let mut cfg = DataSculptConfig::base(5);
        cfg.num_queries = 25;
        let result = run_config(&d, cfg);
        assert!(
            result.lf_set.len() >= 10,
            "expected a nontrivial LF set, got {}",
            result.lf_set.len()
        );
        assert_eq!(result.iterations.len(), 25);
        assert!(result.ledger.calls() >= 25);
        assert!(result.ledger.total_usage().total() > 0);
        assert_eq!(result.failed_iterations(), 0);
        // No duplicate LFs in the accepted set.
        let mut seen = std::collections::HashSet::new();
        for lf in result.lf_set.lfs() {
            assert!(seen.insert((lf.keyword.clone(), lf.label, lf.anchored)));
        }
    }

    #[test]
    fn sc_produces_larger_set_than_base() {
        let d = DatasetName::Imdb.load_scaled(22, 0.02);
        let mut base_cfg = DataSculptConfig::base(5);
        base_cfg.num_queries = 20;
        let mut sc_cfg = DataSculptConfig::sc(5);
        sc_cfg.num_queries = 20;
        let base = run_config(&d, base_cfg);
        let sc = run_config(&d, sc_cfg);
        assert!(
            sc.lf_set.len() > base.lf_set.len(),
            "SC {} should beat Base {} (Table 2 shape)",
            sc.lf_set.len(),
            base.lf_set.len()
        );
        // And costs proportionally more completion tokens.
        assert!(
            sc.ledger.total_usage().completion_tokens
                > base.ledger.total_usage().completion_tokens * 3
        );
    }

    #[test]
    fn runs_are_deterministic_under_seed() {
        let d = DatasetName::Youtube.load_scaled(21, 0.1);
        let mut cfg = DataSculptConfig::cot(9);
        cfg.num_queries = 10;
        let a = run_config(&d, cfg);
        let b = run_config(&d, cfg);
        assert_eq!(a.lf_set.len(), b.lf_set.len());
        let names_a: Vec<_> = a.lf_set.lfs().iter().map(|l| l.name()).collect();
        let names_b: Vec<_> = b.lf_set.lfs().iter().map(|l| l.name()).collect();
        assert_eq!(names_a, names_b);
        assert_eq!(
            a.ledger.total_usage().prompt_tokens,
            b.ledger.total_usage().prompt_tokens
        );
    }

    #[test]
    fn same_seed_runs_have_identical_digests() {
        let d = DatasetName::Youtube.load_scaled(21, 0.1);
        let mut cfg = DataSculptConfig::sc(9);
        cfg.num_queries = 8;
        let a = run_config(&d, cfg);
        let b = run_config(&d, cfg);
        assert_eq!(
            a.digest(),
            b.digest(),
            "same seed must reproduce the run bit-for-bit"
        );
        // A different run seed must perturb the digest.
        let mut other = cfg;
        other.seed = 10;
        let c = run_config(&d, other);
        assert_ne!(a.digest(), c.digest(), "different seed, different run");
    }

    #[test]
    fn cached_model_is_transparent_to_a_run() {
        // The acceptance bar for the cache middleware: wrapping the LLM in
        // `CachedModel` must leave a run byte-identical — same LF names,
        // same token ledger.
        use datasculpt_llm::CachedModel;
        let d = DatasetName::Youtube.load_scaled(21, 0.1);
        let mut cfg = DataSculptConfig::cot(9);
        cfg.num_queries = 10;
        let plain = run_config(&d, cfg);
        let mut cached_llm = CachedModel::new(SimulatedLlm::new(
            ModelId::Gpt35Turbo,
            d.generative.clone(),
            13,
        ));
        let cached = DataSculpt::new(&d, cfg).run(&mut cached_llm).expect("run");
        let names_plain: Vec<_> = plain.lf_set.lfs().iter().map(|l| l.name()).collect();
        let names_cached: Vec<_> = cached.lf_set.lfs().iter().map(|l| l.name()).collect();
        assert_eq!(names_plain, names_cached);
        assert_eq!(
            plain.ledger.total_usage(),
            cached.ledger.total_usage(),
            "ledgers must match with the cache enabled"
        );
        assert_eq!(plain.ledger.calls(), cached.ledger.calls());
    }

    #[test]
    fn repeated_run_hits_the_cache() {
        use datasculpt_llm::CachedModel;
        let d = DatasetName::Youtube.load_scaled(21, 0.1);
        let mut cfg = DataSculptConfig::cot(9);
        cfg.num_queries = 10;
        let mut llm = CachedModel::new(SimulatedLlm::new(
            ModelId::Gpt35Turbo,
            d.generative.clone(),
            13,
        ));
        let first = DataSculpt::new(&d, cfg).run(&mut llm).expect("run");
        let misses_after_first = llm.stats().misses;
        let second = DataSculpt::new(&d, cfg).run(&mut llm).expect("run");
        assert!(
            llm.stats().hits > 0,
            "re-running an identical config should hit the cache"
        );
        assert_eq!(
            llm.stats().misses,
            misses_after_first,
            "no new backend calls on the second run"
        );
        // And the cached second run reproduces the first exactly.
        let names_a: Vec<_> = first.lf_set.lfs().iter().map(|l| l.name()).collect();
        let names_b: Vec<_> = second.lf_set.lfs().iter().map(|l| l.name()).collect();
        assert_eq!(names_a, names_b);
        assert_eq!(first.ledger.total_usage(), second.ledger.total_usage());
    }

    #[test]
    fn failed_iterations_are_logged_and_skipped() {
        let d = DatasetName::Youtube.load_scaled(21, 0.1);
        let mut cfg = DataSculptConfig::base(5);
        cfg.num_queries = 12;
        // Every 4th call fails: never two in a row, so the run completes.
        let mut llm = FailingModel::fail_every(
            SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 13),
            4,
        );
        let result = DataSculpt::new(&d, cfg)
            .run(&mut llm)
            .expect("run completes");
        assert_eq!(result.iterations.len(), 12);
        let failed = result.failed_iterations();
        assert!(failed > 0, "some iterations should have failed");
        assert!(failed < 12, "some iterations should have succeeded");
        for it in result.iterations.iter().filter(|it| it.error.is_some()) {
            assert_eq!(it.label, None);
            assert_eq!(it.accepted, 0);
        }
        // Failed calls are never recorded in the ledger.
        assert_eq!(result.ledger.calls() as usize, 12 - failed);
    }

    #[test]
    fn consecutive_failures_abort_the_run() {
        let d = DatasetName::Youtube.load_scaled(21, 0.1);
        let mut cfg = DataSculptConfig::base(5);
        cfg.num_queries = 10;
        cfg.max_consecutive_failures = 3;
        // Every call fails: the run must abort after exactly 3 iterations.
        let mut llm = FailingModel::fail_every(
            SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 13),
            1,
        );
        let err = DataSculpt::new(&d, cfg).run(&mut llm).unwrap_err();
        let PipelineError::TooManyFailures { limit, last } = err else {
            panic!("expected TooManyFailures, got {err}");
        };
        assert_eq!(limit, 3);
        assert!(matches!(last, LlmError::Transport(_)));
        assert_eq!(llm.calls_attempted(), 3);
    }

    #[test]
    fn checkpoint_sink_sees_every_iteration_and_prefix_digests() {
        struct Capture(Vec<IterationCheckpoint>);
        impl CheckpointSink for Capture {
            fn on_iteration(&mut self, snapshot: &IterationCheckpoint) -> Result<(), String> {
                self.0.push(*snapshot);
                Ok(())
            }
        }
        let d = DatasetName::Youtube.load_scaled(21, 0.1);
        let mut cfg = DataSculptConfig::cot(9);
        cfg.num_queries = 6;
        let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 13);
        let mut sink = Capture(Vec::new());
        let result = DataSculpt::new(&d, cfg)
            .run_durable(&mut llm, &mut NoopObserver, &mut sink)
            .expect("run");
        assert_eq!(sink.0.len(), result.iterations.len());
        let last = sink.0.last().expect("at least one iteration");
        assert_eq!(last.state_digest, result.digest(), "final prefix = run");
        assert_eq!(last.calls, result.ledger.calls());
        assert_eq!(last.cost_nanousd, result.ledger.total_cost_nanousd());
        for (i, snap) in sink.0.iter().enumerate() {
            assert_eq!(snap.iter, i as u64);
            assert!(!snap.failed);
        }
        // The sinked run is byte-identical to the plain run.
        assert_eq!(result.digest(), run_config(&d, cfg).digest());
    }

    #[test]
    fn checkpoint_sink_error_aborts_with_typed_error() {
        struct FailAt(u64);
        impl CheckpointSink for FailAt {
            fn on_iteration(&mut self, snapshot: &IterationCheckpoint) -> Result<(), String> {
                if snapshot.iter == self.0 {
                    Err("disk full".into())
                } else {
                    Ok(())
                }
            }
        }
        let d = DatasetName::Youtube.load_scaled(21, 0.1);
        let mut cfg = DataSculptConfig::base(5);
        cfg.num_queries = 8;
        let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 13);
        let err = DataSculpt::new(&d, cfg)
            .run_durable(&mut llm, &mut NoopObserver, &mut FailAt(2))
            .unwrap_err();
        assert_eq!(
            err,
            PipelineError::Checkpoint {
                iter: 2,
                message: "disk full".into()
            }
        );
        assert!(err.to_string().contains("iteration 2"), "{err}");
    }

    #[test]
    fn relation_task_emits_anchored_lfs() {
        let d = DatasetName::Spouse.load_scaled(8, 0.02);
        let mut cfg = DataSculptConfig::sc(3);
        cfg.num_queries = 20;
        let result = run_config(&d, cfg);
        // At least some accepted LFs should exist; anchored variants are
        // offered for every keyword.
        let total_offered: usize = result
            .iterations
            .iter()
            .map(|it| it.accepted + it.rejected)
            .sum();
        assert!(total_offered > 0, "no candidates at all");
        assert!(
            result.lf_set.lfs().iter().any(|l| !l.keyword.is_empty()),
            "no LFs accepted"
        );
    }

    #[test]
    fn revision_recovers_extra_lfs() {
        // With a weak model (lots of accuracy rejections) and revision on,
        // the revised phrases should win back some LFs — and cost extra
        // tokens.
        let d = DatasetName::Imdb.load_scaled(27, 0.03);
        let run_with = |revise: bool| {
            let mut llm = SimulatedLlm::new(ModelId::Llama2Chat13b, d.generative.clone(), 17);
            let mut cfg = DataSculptConfig::base(4);
            cfg.num_queries = 25;
            cfg.revise_rejected = revise;
            DataSculpt::new(&d, cfg).run(&mut llm).expect("run")
        };
        let plain = run_with(false);
        let revised = run_with(true);
        assert!(
            revised.lf_set.len() >= plain.lf_set.len(),
            "revision should not shrink the set: {} vs {}",
            revised.lf_set.len(),
            plain.lf_set.len()
        );
        assert!(
            revised.ledger.total_usage().total() > plain.ledger.total_usage().total(),
            "revision consumes extra tokens"
        );
    }

    #[test]
    fn preset_labels() {
        assert_eq!(DataSculptConfig::base(0).label(), "DataSculpt-Base");
        assert_eq!(DataSculptConfig::cot(0).label(), "DataSculpt-CoT");
        assert_eq!(DataSculptConfig::sc(0).label(), "DataSculpt-SC");
        assert_eq!(DataSculptConfig::kate(0).label(), "DataSculpt-KATE");
    }

    #[test]
    fn exhausted_pool_stops_early() {
        let d = DatasetName::Youtube.load_scaled(21, 0.011); // ~17 train docs
        let mut cfg = DataSculptConfig::base(1);
        cfg.num_queries = 100;
        let result = run_config(&d, cfg);
        assert!(result.iterations.len() <= d.train.len());
    }
}
