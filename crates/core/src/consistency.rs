//! Self-consistency aggregation (§4.1, DataSculpt-SC).
//!
//! The LLM produces `k` samples for the same query; the predicted label is
//! the majority vote over parsed labels, and the keyword set is the union
//! of keywords from the samples that agree with the majority — which is how
//! self-consistency both stabilizes the label and *enlarges* the LF set
//! (Table 2: SC/KATE produce roughly 2× the LFs of Base).

use crate::parse::ParsedResponse;

/// Aggregate parsed samples: majority label + pooled keywords.
///
/// Returns `None` when no sample produced a label (the iteration then
/// yields no LFs). Ties break toward the smaller class index, keeping runs
/// deterministic.
pub fn aggregate_consistency(
    samples: &[ParsedResponse],
    n_classes: usize,
) -> Option<(usize, Vec<String>)> {
    let mut votes = vec![0usize; n_classes];
    for s in samples {
        if let Some(v) = s.label.and_then(|l| votes.get_mut(l)) {
            *v += 1;
        }
    }
    let total: usize = votes.iter().sum();
    if total == 0 {
        return None;
    }
    let label = votes
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i)?;

    let mut keywords = Vec::new();
    for s in samples {
        if s.label == Some(label) {
            for k in &s.keywords {
                if !keywords.contains(k) {
                    keywords.push(k.clone());
                }
            }
        }
    }
    Some((label, keywords))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(keywords: &[&str], label: Option<usize>) -> ParsedResponse {
        ParsedResponse {
            keywords: keywords.iter().map(|s| s.to_string()).collect(),
            label,
            explanation: None,
        }
    }

    #[test]
    fn majority_label_wins() {
        let samples = vec![
            resp(&["a"], Some(1)),
            resp(&["b"], Some(1)),
            resp(&["c"], Some(0)),
        ];
        let (label, kws) = aggregate_consistency(&samples, 2).expect("aggregated");
        assert_eq!(label, 1);
        assert_eq!(kws, vec!["a", "b"]);
    }

    #[test]
    fn losing_samples_contribute_no_keywords() {
        let samples = vec![
            resp(&["x"], Some(0)),
            resp(&["y"], Some(1)),
            resp(&["z"], Some(1)),
        ];
        let (_, kws) = aggregate_consistency(&samples, 2).expect("aggregated");
        assert!(!kws.contains(&"x".to_string()));
    }

    #[test]
    fn keywords_pool_without_duplicates() {
        let samples = vec![resp(&["a", "b"], Some(1)), resp(&["b", "c"], Some(1))];
        let (_, kws) = aggregate_consistency(&samples, 2).expect("aggregated");
        assert_eq!(kws, vec!["a", "b", "c"]);
    }

    #[test]
    fn tie_breaks_to_lower_class() {
        let samples = vec![resp(&["a"], Some(1)), resp(&["b"], Some(0))];
        let (label, _) = aggregate_consistency(&samples, 2).expect("aggregated");
        assert_eq!(label, 0);
    }

    #[test]
    fn unlabeled_samples_are_ignored() {
        let samples = vec![resp(&["a"], None), resp(&["b"], Some(1))];
        let (label, kws) = aggregate_consistency(&samples, 2).expect("aggregated");
        assert_eq!(label, 1);
        assert_eq!(kws, vec!["b"]);
    }

    #[test]
    fn all_unusable_yields_none() {
        let samples = vec![resp(&["a"], None), resp(&[], None)];
        assert!(aggregate_consistency(&samples, 2).is_none());
        assert!(aggregate_consistency(&[], 2).is_none());
    }
}
