//! Property-based tests for the DataSculpt core.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt_core::consistency::aggregate_consistency;
use datasculpt_core::filter::consensus;
use datasculpt_core::lf::{anchored_fires, KeywordLf};
use datasculpt_core::parse::{parse_label, parse_response, ParsedResponse};
use datasculpt_labelmodel::ABSTAIN;
use proptest::prelude::*;

proptest! {
    /// The response parser is total: any string yields a well-formed
    /// parse with in-range labels and normalized keywords.
    #[test]
    fn parser_total(s in "\\PC{0,300}", n_classes in 2usize..5) {
        let p = parse_response(&s, n_classes);
        if let Some(l) = p.label {
            prop_assert!(l < n_classes);
        }
        for k in &p.keywords {
            prop_assert!(!k.is_empty());
            prop_assert_eq!(k.clone(), datasculpt_text::tokenize(k).join(" "));
        }
        // parse_label alone agrees with the full parser.
        prop_assert_eq!(p.label, parse_label(&s, n_classes));
    }

    /// A well-formed response always parses back exactly.
    #[test]
    fn parser_roundtrip(
        kws in proptest::collection::vec("[a-z]{2,8}( [a-z]{2,8}){0,2}", 1..5),
        label in 0usize..4,
    ) {
        let mut kws = kws;
        kws.dedup();
        let text = format!("Keywords: {}\nLabel: {label}", kws.join(", "));
        let p = parse_response(&text, 4);
        prop_assert_eq!(p.label, Some(label));
        let mut expected = Vec::new();
        for k in &kws {
            if !expected.contains(k) {
                expected.push(k.clone());
            }
        }
        prop_assert_eq!(p.keywords, expected);
    }

    /// Consensus is symmetric, bounded, and 1 on identical columns.
    #[test]
    fn consensus_properties(
        a in proptest::collection::vec(-1i32..3, 1..40),
        b in proptest::collection::vec(-1i32..3, 1..40),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let c = consensus(a, b);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert_eq!(c, consensus(b, a));
        if a.iter().any(|&v| v != ABSTAIN) {
            prop_assert_eq!(consensus(a, a), 1.0);
        }
    }

    /// Self-consistency never invents a label and only pools keywords from
    /// majority-agreeing samples.
    #[test]
    fn consistency_sound(samples in proptest::collection::vec(
        (proptest::option::of(0usize..3),
         proptest::collection::vec("[a-z]{2,6}", 0..4)), 0..8)) {
        let parsed: Vec<ParsedResponse> = samples
            .iter()
            .map(|(label, kws)| ParsedResponse {
                keywords: kws.clone(),
                label: *label,
                explanation: None,
            })
            .collect();
        match aggregate_consistency(&parsed, 3) {
            None => prop_assert!(parsed.iter().all(|p| p.label.is_none())),
            Some((label, kws)) => {
                prop_assert!(label < 3);
                prop_assert!(parsed.iter().any(|p| p.label == Some(label)));
                for k in &kws {
                    prop_assert!(parsed
                        .iter()
                        .filter(|p| p.label == Some(label))
                        .any(|p| p.keywords.contains(k)));
                }
                // Majority property: no other label has strictly more votes.
                let count = |l: usize| parsed.iter().filter(|p| p.label == Some(l)).count();
                for other in 0..3 {
                    prop_assert!(count(other) <= count(label));
                }
            }
        }
    }

    /// LF activation is deterministic and anchored activation implies the
    /// keyword is present in the span view.
    #[test]
    fn lf_activation_properties(
        tokens in proptest::collection::vec("[a-c]{1,2}", 0..15),
        kw in "[a-c]{1,2}( [a-c]{1,2}){0,2}",
        marker_a in 0usize..16,
        marker_b in 0usize..16,
    ) {
        let mut marked = tokens.clone();
        let ia = marker_a.min(marked.len());
        marked.insert(ia, "[a]".to_string());
        let ib = marker_b.min(marked.len());
        marked.insert(ib, "[b]".to_string());
        let fires = anchored_fires(&marked, &kw);
        if fires {
            // The keyword must appear somewhere in the marked view.
            prop_assert!(datasculpt_text::ngram::contains_ngram(&marked, &kw));
        }
        // Plain containment is deterministic.
        let lf = KeywordLf::new(kw.clone(), 0);
        prop_assert!(lf.is_valid_ngram());
        prop_assert_eq!(
            datasculpt_text::ngram::contains_ngram(&tokens, &kw),
            datasculpt_text::ngram::contains_ngram(&tokens, &kw)
        );
    }
}
