//! Baselines compared against DataSculpt in §4 (Table 2, Figures 3–4).
//!
//! * [`wrench`] — the WRENCH benchmark's hand-written expert LFs, simulated
//!   by an oracle "domain expert" that mines a small set of high-precision,
//!   high-coverage keyword LFs from the dataset's generative model.
//! * [`scriptorium`] — ScriptoriumWS (Huang et al., 2023): LFs generated
//!   from a broad, task-description-only prompt with no query instances.
//!   Cheap and high-coverage, but less precise — the lack-of-specificity
//!   trade-off the paper's intro describes.
//! * [`promptedlf`] — PromptedLF (Smith et al., 2022): every unlabeled
//!   instance is annotated by every prompt template; each template's
//!   answers form one weak-label column. Accurate but exhaustive — the
//!   cost side of Figures 3–4.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod promptedlf;
pub mod scriptorium;
pub mod wrench;

pub use promptedlf::{
    promptedlf_run, promptedlf_run_observed, promptedlf_templates, PromptedLfResult,
};
pub use scriptorium::{scriptorium_run, ScriptoriumResult};
pub use wrench::{wrench_expert_lfs, wrench_lf_count};
