//! WRENCH expert LFs, simulated by an oracle domain expert.
//!
//! The WRENCH benchmark ships a small set of LFs written by human experts.
//! Our substitute expert reads the dataset's generative model directly (the
//! expert *knows the domain*) and picks, per class, the keywords with the
//! best precision-coverage product — exactly the kind of broad, reliable
//! keywords a human would write first. The LF counts per dataset match the
//! `#LFs` row of Table 2.

use datasculpt_core::lf::KeywordLf;
use datasculpt_data::{DatasetName, TextDataset};

/// Number of expert LFs per dataset (Table 2, WRENCH row).
pub fn wrench_lf_count(name: DatasetName) -> usize {
    match name {
        DatasetName::Youtube => 10,
        DatasetName::Sms => 73,
        DatasetName::Imdb => 5,
        DatasetName::Yelp => 8,
        DatasetName::Agnews => 9,
        DatasetName::Spouse => 9,
    }
}

/// Mine `n_lfs` expert keyword LFs from the generative model, round-robin
/// across classes, ranked by `accuracy² × √coverage` (experts favour
/// precision first, then reach).
pub fn wrench_expert_lfs(dataset: &TextDataset, n_lfs: usize) -> Vec<KeywordLf> {
    let gen = &dataset.generative;
    let priors = gen.priors();
    let n_classes = gen.n_classes();
    let relation = dataset.spec.relation;

    // Rank candidates per class.
    let mut per_class: Vec<Vec<(f64, KeywordLf)>> = vec![Vec::new(); n_classes];
    for g in gen.indicative_grams() {
        let c = g.dominant_class();
        let acc = g.lf_accuracy(priors);
        let cov = g.coverage(priors);
        if acc < 0.6 || cov <= 0.0 {
            continue; // an expert would not ship a sub-threshold LF
        }
        let score = acc * acc * cov.sqrt();
        if let Some(list) = per_class.get_mut(c) {
            list.push((score, KeywordLf::new(g.gram.clone(), c)));
        }
    }
    // Relation experts write entity-anchored rules from the linking
    // patterns themselves (`[A] married [B]`, §3.1) — these dominate the
    // positive-class ranking because they are near-perfect.
    if relation {
        for conn in gen.relation_connectors() {
            let lf = KeywordLf::anchored(conn, 1);
            let anchored = if lf.is_valid_ngram() {
                Some(lf)
            } else {
                // Longer patterns: anchor their trailing trigram.
                let words: Vec<&str> = conn.split(' ').collect();
                words
                    .len()
                    .checked_sub(3)
                    .filter(|_| words.len() > 3)
                    .and_then(|start| words.get(start..))
                    .map(|tail| KeywordLf::anchored(tail.join(" "), 1))
            };
            if let Some(lf) = anchored {
                if let Some(list) = per_class.get_mut(1) {
                    list.push((10.0, lf));
                }
            }
        }
    }
    for list in &mut per_class {
        list.sort_by(|a, b| b.0.total_cmp(&a.0));
    }

    // Relation tasks: spend the budget on the anchored linking rules first
    // (a relation expert's rules are mostly about the relation itself; the
    // default class catches the rest).
    let mut out = Vec::with_capacity(n_lfs);
    if relation {
        for (score, lf) in per_class.get(1).map(Vec::as_slice).unwrap_or(&[]) {
            if *score >= 10.0 && out.len() + 1 < n_lfs {
                out.push(lf.clone());
            }
        }
        if let Some(list) = per_class.get_mut(1) {
            list.retain(|(score, _)| *score < 10.0);
        }
    }

    // Round-robin across classes until the budget is filled.
    let mut rank = 0usize;
    while out.len() < n_lfs {
        let mut progressed = false;
        for list in &per_class {
            if out.len() >= n_lfs {
                break;
            }
            if let Some((_, lf)) = list.get(rank) {
                out.push(lf.clone());
                progressed = true;
            }
        }
        if !progressed {
            break; // candidate pool exhausted
        }
        rank += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasculpt_core::eval::{evaluate_lf_set, EvalConfig};
    use datasculpt_core::filter::FilterConfig;
    use datasculpt_core::lfset::LfSet;

    #[test]
    fn counts_match_table2() {
        assert_eq!(wrench_lf_count(DatasetName::Youtube), 10);
        assert_eq!(wrench_lf_count(DatasetName::Sms), 73);
        let total: usize = DatasetName::ALL.iter().map(|d| wrench_lf_count(*d)).sum();
        assert_eq!(total, 10 + 73 + 5 + 8 + 9 + 9);
    }

    #[test]
    fn expert_lfs_are_few_precise_and_broad() {
        let d = DatasetName::Youtube.load_scaled(5, 0.2);
        let lfs = wrench_expert_lfs(&d, 10);
        assert_eq!(lfs.len(), 10);
        // Class-balanced-ish: both classes represented.
        assert!(lfs.iter().any(|l| l.label == 0));
        assert!(lfs.iter().any(|l| l.label == 1));
        // Evaluate: expert LFs should be accurate and give real coverage.
        let mut set = LfSet::new(&d, FilterConfig::validity_only());
        for lf in lfs {
            set.try_add(lf);
        }
        let eval = evaluate_lf_set(
            &d,
            &set,
            &EvalConfig {
                feature_dim: 8192,
                ..EvalConfig::default()
            },
        );
        let acc = eval.lf_stats.lf_accuracy.expect("train labels available");
        assert!(acc > 0.75, "expert LF accuracy {acc}");
        assert!(
            eval.lf_stats.total_coverage > 0.4,
            "{}",
            eval.lf_stats.total_coverage
        );
    }

    #[test]
    fn spouse_experts_anchor_positive_lfs() {
        let d = DatasetName::Spouse.load_scaled(5, 0.02);
        let lfs = wrench_expert_lfs(&d, 9);
        assert!(lfs.iter().any(|l| l.anchored && l.label == 1));
        assert!(lfs.iter().filter(|l| l.label == 0).all(|l| !l.anchored));
    }

    #[test]
    fn budget_larger_than_pool_is_safe() {
        let d = DatasetName::Imdb.load_scaled(5, 0.02);
        let lfs = wrench_expert_lfs(&d, 100_000);
        assert!(!lfs.is_empty());
        assert!(lfs.len() < 100_000);
    }
}
