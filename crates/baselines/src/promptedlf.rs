//! PromptedLF baseline: exhaustive per-instance annotation.
//!
//! PromptedLF (Smith et al., 2022) designs several prompt templates per
//! task, queries the LLM with *every unlabeled instance under every
//! template*, and treats each template's answers as one weak-label column.
//! The original paper provides templates for Youtube, SMS, and Spouse; the
//! DataSculpt authors derive the remaining templates from the WRENCH LFs.
//! We mirror that: template counts match Table 2's `#LFs` row, and each
//! template is a distinct phrasing of the annotation question. The sheer
//! number of calls — `|train| × |templates|` — is what drives the 170M-token
//! cost of Figures 3–4.

use datasculpt_core::eval::lf_stats_from_matrix;
use datasculpt_core::parse::parse_label;
use datasculpt_core::prompt::label_only_messages;
use datasculpt_data::{DatasetName, TextDataset};
use datasculpt_labelmodel::{LabelMatrix, ABSTAIN};
use datasculpt_llm::{ChatModel, ChatRequest, PricingTable, UsageLedger};
use datasculpt_obs::{Counter, Event, NoopObserver, RunObserver, Stage};

/// Number of templates per dataset (Table 2, PromptedLF row).
pub fn promptedlf_template_count(name: DatasetName) -> usize {
    match name {
        DatasetName::Youtube => 10,
        DatasetName::Sms => 73,
        DatasetName::Imdb => 7,
        DatasetName::Yelp => 7,
        DatasetName::Agnews => 4,
        DatasetName::Spouse => 11,
    }
}

/// Build the annotation templates for a dataset: distinct phrasings of the
/// same classification question (in the real system these are
/// hand-designed or translated from WRENCH LFs). A dataset whose name is
/// not one of the paper's six gets one template per phrasing.
pub fn promptedlf_templates(dataset: &TextDataset) -> Vec<String> {
    let count = DatasetName::parse(dataset.spec.name)
        .map(promptedlf_template_count)
        .unwrap_or(8);
    let class_list = dataset
        .spec
        .class_names
        .iter()
        .enumerate()
        .map(|(i, n)| format!("{i} for {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    let phrasings = [
        "Classify the following input",
        "Read the input carefully and decide its class",
        "Annotate the input with its class",
        "Which class does the input belong to? Decide",
        "Act as an annotator and label the input",
        "Judge the input and assign a class",
        "You will see one input; categorize it",
        "Consider the wording of the input and classify it",
    ];
    (0..count)
        .map(|k| {
            format!(
                "Template {k}: {} ({class_list}).",
                phrasings.get(k % phrasings.len()).copied().unwrap_or("")
            )
        })
        .collect()
}

/// The outcome of a PromptedLF run.
#[derive(Debug)]
pub struct PromptedLfResult {
    /// Weak-label matrix over the train split: one column per template.
    pub matrix: LabelMatrix,
    /// Token usage (the expensive part).
    pub ledger: UsageLedger,
    /// Calls that failed with an [`datasculpt_llm::LlmError`]; their votes
    /// are recorded as abstains.
    pub failed_calls: usize,
}

impl PromptedLfResult {
    /// Number of "LFs" (template columns).
    pub fn n_lfs(&self) -> usize {
        self.matrix.cols()
    }

    /// LF statistics against optional train labels.
    pub fn lf_stats(
        &self,
        train_labels: Option<&[Option<usize>]>,
    ) -> datasculpt_core::eval::LfStats {
        lf_stats_from_matrix(&self.matrix, train_labels)
    }
}

/// Annotate every train instance with every template.
///
/// Each template's requests are issued as one [`ChatModel::complete_batch`]
/// call — the natural shape for a bulk annotation job. A failed or empty
/// response votes [`ABSTAIN`] (and is counted in
/// [`PromptedLfResult::failed_calls`]) rather than aborting the run:
/// abstention is exactly what a weak-label column does when it has no
/// opinion.
pub fn promptedlf_run<M: ChatModel>(dataset: &TextDataset, llm: &mut M) -> PromptedLfResult {
    promptedlf_run_observed(dataset, llm, &mut NoopObserver)
}

/// [`promptedlf_run`] with a [`RunObserver`] attached.
///
/// The baseline has no selection/integration loop, so the trace is flat:
/// one [`Stage::Annotate`] span per template (the `iter` field carries the
/// template index), [`Event::Usage`] per billed call, and
/// [`Counter::ParseFailure`] / [`Counter::LlmError`] for responses that
/// yield no vote.
pub fn promptedlf_run_observed<M: ChatModel>(
    dataset: &TextDataset,
    llm: &mut M,
    obs: &mut dyn RunObserver,
) -> PromptedLfResult {
    let templates = promptedlf_templates(dataset);
    let n = dataset.train.len();
    let n_classes = dataset.n_classes();
    obs.on_event(&Event::RunBegin {
        label: "PromptedLF".to_string(),
        dataset: dataset.spec.name.to_string(),
        model: llm.model_id().api_name().to_string(),
        queries: (n * templates.len()) as u64,
        seed: 0,
    });
    let mut ledger = UsageLedger::new();
    let mut failed_calls = 0usize;
    let mut columns: Vec<Vec<i32>> = Vec::with_capacity(templates.len());
    for (t_idx, template) in templates.iter().enumerate() {
        obs.on_event(&Event::StageBegin {
            iter: t_idx as u64,
            stage: Stage::Annotate,
        });
        let requests: Vec<ChatRequest> = dataset
            .train
            .iter()
            .map(|inst| {
                let messages = label_only_messages(&dataset.spec, template, &inst.prompt_text());
                ChatRequest::new(messages).with_temperature(0.7)
            })
            .collect();
        let mut col = Vec::with_capacity(n);
        let mut parse_failures = 0u64;
        let mut errors = 0u64;
        for result in llm.complete_batch(&requests) {
            let vote = match result {
                Ok(resp) => {
                    ledger.record(resp.model, resp.usage);
                    obs.on_event(&Event::Usage {
                        model: resp.model.api_name().to_string(),
                        prompt_tokens: resp.usage.prompt_tokens,
                        completion_tokens: resp.usage.completion_tokens,
                        cost_nanousd: PricingTable::cost_nanousd(
                            resp.model,
                            resp.usage.prompt_tokens,
                            resp.usage.completion_tokens,
                        ),
                    });
                    match resp
                        .choices
                        .first()
                        .and_then(|c| parse_label(&c.content, n_classes))
                    {
                        Some(l) => l as i32,
                        None => {
                            parse_failures += 1;
                            ABSTAIN
                        }
                    }
                }
                Err(_) => {
                    failed_calls += 1;
                    errors += 1;
                    ABSTAIN
                }
            };
            col.push(vote);
        }
        if parse_failures > 0 {
            obs.on_event(&Event::Counter {
                counter: Counter::ParseFailure,
                delta: parse_failures,
            });
        }
        if errors > 0 {
            obs.on_event(&Event::Counter {
                counter: Counter::LlmError,
                delta: errors,
            });
        }
        obs.on_event(&Event::StageEnd {
            iter: t_idx as u64,
            stage: Stage::Annotate,
        });
        columns.push(col);
    }
    obs.on_event(&Event::RunEnd {
        iterations: templates.len() as u64,
        failed: 0,
        lfs: columns.len() as u64,
    });
    PromptedLfResult {
        matrix: LabelMatrix::from_columns(&columns, n),
        ledger,
        failed_calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasculpt_llm::{ModelId, SimulatedLlm};

    #[test]
    fn template_counts_match_table2() {
        let d = DatasetName::Youtube.load_scaled(1, 0.02);
        assert_eq!(promptedlf_templates(&d).len(), 10);
        let total: usize = DatasetName::ALL
            .iter()
            .map(|n| promptedlf_template_count(*n))
            .sum();
        assert_eq!(total, 10 + 73 + 7 + 7 + 4 + 11);
    }

    #[test]
    fn templates_are_distinct() {
        let d = DatasetName::Sms.load_scaled(1, 0.02);
        let t = promptedlf_templates(&d);
        let set: std::collections::HashSet<_> = t.iter().collect();
        assert_eq!(set.len(), t.len());
    }

    #[test]
    fn annotations_are_accurate_but_expensive() {
        let d = DatasetName::Youtube.load_scaled(3, 0.05);
        let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 4);
        let result = promptedlf_run(&d, &mut llm);
        assert_eq!(result.matrix.rows(), d.train.len());
        assert_eq!(result.n_lfs(), 10);
        // Calls scale with |train| × |templates|.
        assert_eq!(result.ledger.calls() as usize, d.train.len() * 10);
        assert_eq!(result.failed_calls, 0);
        let labels = d.train.labels_opt();
        let stats = result.lf_stats(Some(&labels));
        let acc = stats.lf_accuracy.expect("labels available");
        assert!(acc > 0.7, "annotation accuracy {acc}");
        // Per-template coverage is high (most instances get an answer).
        assert!(stats.lf_coverage > 0.5, "{}", stats.lf_coverage);
        // Cost dwarfs a DataSculpt run on the same data.
        assert!(result.ledger.total_usage().total() > 20_000);
    }

    #[test]
    fn failed_calls_vote_abstain() {
        use datasculpt_llm::FailingModel;
        let d = DatasetName::Youtube.load_scaled(3, 0.02);
        let inner = SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 4);
        let mut llm = FailingModel::fail_every(inner, 5);
        let result = promptedlf_run(&d, &mut llm);
        let expected_failures = (d.train.len() * 10) / 5;
        assert_eq!(result.failed_calls, expected_failures);
        // Failed calls are not billed, the rest are.
        assert_eq!(
            result.ledger.calls() as usize,
            d.train.len() * 10 - expected_failures
        );
        assert_eq!(result.matrix.rows(), d.train.len());
    }

    #[test]
    fn observer_mirrors_ledger_and_failures() {
        use datasculpt_llm::FailingModel;
        use datasculpt_obs::{ManualClock, MetricsRecorder, Tracer};
        let d = DatasetName::Youtube.load_scaled(3, 0.02);
        let inner = SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 4);
        let mut llm = FailingModel::fail_every(inner, 5);
        let metrics = MetricsRecorder::new();
        let mut tracer = Tracer::new(Box::new(ManualClock::new(10)));
        tracer.add_sink(Box::new(metrics.clone()));
        let result = promptedlf_run_observed(&d, &mut llm, &mut tracer);
        let snap = metrics.snapshot();
        // One annotate span per template.
        assert_eq!(snap.stages["annotate"].count, 10);
        // Usage events mirror the ledger exactly (tokens and exact cost).
        let total = result.ledger.total_usage();
        let m = &snap.models["gpt-3.5-turbo-0613"];
        assert_eq!(m.calls, result.ledger.calls());
        assert_eq!(m.prompt_tokens, total.prompt_tokens);
        assert_eq!(m.completion_tokens, total.completion_tokens);
        assert_eq!(
            snap.total_cost_nanousd(),
            result.ledger.total_cost_nanousd()
        );
        // Failed calls surface as llm_error counter increments.
        assert_eq!(snap.counters["llm_error"] as usize, result.failed_calls);
        assert!(result.failed_calls > 0);
    }

    #[test]
    fn abstains_happen_on_evidence_free_instances() {
        let d = DatasetName::Sms.load_scaled(3, 0.02);
        let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 4);
        let result = promptedlf_run(&d, &mut llm);
        let stats = result.lf_stats(None);
        assert!(stats.lf_coverage < 1.0, "some abstains expected");
        assert!(stats.lf_coverage > 0.2, "but not everywhere");
    }
}
