//! ScriptoriumWS-style baseline: broad, instance-free LF generation.
//!
//! ScriptoriumWS prompts a code-generation model with only the task
//! description and asks for label functions. We reproduce the structural
//! behaviour with the simulated LLM's generic-keywords mode: one prompt per
//! class asking for the most indicative keywords of that class, with no
//! query instance. The result is a small LF set of *broad* keywords —
//! coverage-ranked rather than instance-grounded — which is why its
//! accuracy trails DataSculpt by ~11 points in Table 2. No validation
//! filtering is applied (ScriptoriumWS has none).

use datasculpt_core::lf::KeywordLf;
use datasculpt_core::parse::parse_response;
use datasculpt_data::{DatasetName, TextDataset};
use datasculpt_llm::simulated::GENERIC_KEYWORDS_MARKER;
use datasculpt_llm::{ChatMessage, ChatModel, ChatRequest, LlmError, UsageLedger};

/// Number of generated LFs per dataset (Table 2, ScriptoriumWS row).
pub fn scriptorium_lf_count(name: DatasetName) -> usize {
    match name {
        DatasetName::Youtube => 9,
        DatasetName::Sms => 73,
        DatasetName::Imdb => 6,
        DatasetName::Yelp => 11,
        DatasetName::Agnews => 8,
        DatasetName::Spouse => 8,
    }
}

/// The outcome of a ScriptoriumWS run.
#[derive(Debug)]
pub struct ScriptoriumResult {
    /// Generated LFs.
    pub lfs: Vec<KeywordLf>,
    /// Token usage.
    pub ledger: UsageLedger,
}

/// Run the baseline: one broad prompt per class.
///
/// Unlike the bulk-annotation baselines, each of the few calls here is
/// load-bearing (it produces a whole class's LFs), so any LLM failure
/// aborts the run.
pub fn scriptorium_run<M: ChatModel>(
    dataset: &TextDataset,
    llm: &mut M,
    total_lfs: usize,
) -> Result<ScriptoriumResult, LlmError> {
    let n_classes = dataset.n_classes();
    let per_class = total_lfs.div_ceil(n_classes);
    let mut ledger = UsageLedger::new();
    let mut lfs = Vec::with_capacity(total_lfs);
    for class in 0..n_classes {
        let messages = vec![
            ChatMessage::system(format!(
                "You are a helpful assistant who helps users write label functions for {}",
                dataset.spec.task_description
            )),
            ChatMessage::user(format!(
                "{GENERIC_KEYWORDS_MARKER} for class {class} ({}). Return up to {per_class} keywords.",
                dataset.spec.class_names.get(class).copied().unwrap_or("?")
            )),
        ];
        let resp = llm.complete(&ChatRequest::new(messages).with_temperature(0.7))?;
        ledger.record(resp.model, resp.usage);
        let content = resp
            .choices
            .first()
            .map(|c| c.content.as_str())
            .ok_or(LlmError::EmptyResponse)?;
        let parsed = parse_response(content, n_classes);
        for kw in parsed.keywords {
            if lfs.len() >= total_lfs {
                break;
            }
            // ScriptoriumWS LFs are plain code predicates — no entity
            // anchoring even on relation tasks (part of why it is noisy
            // there).
            lfs.push(KeywordLf::new(kw, class));
        }
    }
    Ok(ScriptoriumResult { lfs, ledger })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasculpt_core::eval::{evaluate_lf_set, EvalConfig};
    use datasculpt_core::filter::FilterConfig;
    use datasculpt_core::lfset::LfSet;
    use datasculpt_llm::{ModelId, SimulatedLlm};

    #[test]
    fn generates_requested_count_cheaply() {
        let d = DatasetName::Youtube.load_scaled(5, 0.2);
        let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 1);
        let result = scriptorium_run(&d, &mut llm, 9).unwrap();
        assert!(
            result.lfs.len() <= 9 && result.lfs.len() >= 6,
            "{}",
            result.lfs.len()
        );
        // Two prompts only: cost is tiny (Figure 3's ScriptoriumWS bar).
        assert_eq!(result.ledger.calls(), 2);
        assert!(result.ledger.total_usage().total() < 500);
    }

    #[test]
    fn broad_lfs_have_high_coverage_lower_accuracy() {
        let d = DatasetName::Imdb.load_scaled(5, 0.05);
        let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 1);
        let result = scriptorium_run(&d, &mut llm, 6).unwrap();
        let mut set = LfSet::new(&d, FilterConfig::validity_only());
        for lf in result.lfs {
            set.try_add(lf);
        }
        let eval = evaluate_lf_set(
            &d,
            &set,
            &EvalConfig {
                feature_dim: 8192,
                ..EvalConfig::default()
            },
        );
        // Broad keywords: per-LF coverage well above DataSculpt's ~0.02.
        assert!(
            eval.lf_stats.lf_coverage > 0.03,
            "{}",
            eval.lf_stats.lf_coverage
        );
    }

    #[test]
    fn covers_all_classes() {
        let d = DatasetName::Agnews.load_scaled(5, 0.01);
        let mut llm = SimulatedLlm::new(ModelId::Gpt4, d.generative.clone(), 2);
        let result = scriptorium_run(&d, &mut llm, 8).unwrap();
        let classes: std::collections::HashSet<_> = result.lfs.iter().map(|l| l.label).collect();
        assert!(classes.len() >= 3, "{classes:?}");
    }
}
