//! Observability-overhead microbench: `BENCH_obs.json`.
//!
//! Measures the cost of observation itself — events/second through the
//! real observer stacks a CLI run wires up — against the
//! [`NoopObserver`] floor. The workload is a synthetic but
//! schema-faithful event stream (run → iterations → generate spans with
//! usage and counter events), so every layer does its real work: the
//! tracer stamps and matches spans, the metrics recorder aggregates and
//! feeds histograms, the JSONL sink serializes every record.
//!
//! Stacks timed, cheapest to fullest:
//!
//! * `noop` — [`NoopObserver`]: the do-nothing floor.
//! * `tracer-metrics` — [`Tracer`] + [`MetricsRecorder`].
//! * `tracer-jsonl` — [`Tracer`] + [`JsonlTraceSink`] over [`std::io::sink`]
//!   (serialization cost without disk noise).
//! * `tracer-full` — the CLI `--trace --metrics` stack behind a
//!   [`SharedObserver`]: tracer fanning out to metrics *and* JSONL.
//!
//! Per-event overhead = (stack median − noop median) / events; the
//! current measured numbers are recorded in `docs/observability.md`.

use crate::hotpath::{peak_rss_kb, time_kernel, KernelTiming};
use datasculpt::prelude::*;

/// Kernel names every report must contain (schema contract).
pub const REQUIRED_KERNELS: [&str; 4] = ["noop", "tracer-metrics", "tracer-jsonl", "tracer-full"];

/// Events emitted per workload invocation for `blocks` iteration blocks:
/// run span + per-block iteration span, generate span, usage, counter.
pub fn events_per_workload(blocks: u64) -> u64 {
    2 + blocks * 6
}

/// Emit the synthetic workload: one run of `blocks` iterations, each with
/// a generate span enclosing a usage event plus one counter bump.
pub fn emit_workload(observer: &mut impl RunObserver, blocks: u64) {
    observer.on_event(&Event::RunBegin {
        label: "obsbench".into(),
        dataset: "synthetic".into(),
        model: "sim".into(),
        queries: blocks,
        seed: 0,
    });
    for iter in 0..blocks {
        observer.on_event(&Event::IterationBegin {
            iter,
            instance: iter,
        });
        observer.on_event(&Event::StageBegin {
            iter,
            stage: Stage::Generate,
        });
        observer.on_event(&Event::Usage {
            model: "sim".into(),
            prompt_tokens: 120,
            completion_tokens: 16,
            cost_nanousd: 9_500,
        });
        observer.on_event(&Event::Counter {
            counter: Counter::LfAccepted,
            delta: 1,
        });
        observer.on_event(&Event::StageEnd {
            iter,
            stage: Stage::Generate,
        });
        observer.on_event(&Event::IterationEnd {
            iter,
            accepted: 1,
            rejected: 0,
            failed: false,
        });
    }
    observer.on_event(&Event::RunEnd {
        iterations: blocks,
        failed: 0,
        lfs: blocks,
    });
}

/// The full obs-overhead report written as `BENCH_obs.json`.
#[derive(Debug)]
pub struct ObsReport {
    /// Iteration blocks per workload invocation.
    pub blocks: u64,
    /// Events per workload invocation (what `median_ns_per_op` covers).
    pub events: u64,
    /// Timed stacks, in run order.
    pub kernels: Vec<KernelTiming>,
    /// Peak RSS of the benchmarking process in kB.
    pub peak_rss_kb: u64,
}

/// Run every observer stack, `iters` timed iterations each over
/// `blocks`-iteration workloads.
pub fn run_report(blocks: u64, iters: usize) -> ObsReport {
    let kernels = vec![
        time_kernel("noop", iters, || {
            let mut obs = NoopObserver;
            emit_workload(&mut obs, blocks);
        }),
        time_kernel("tracer-metrics", iters, || {
            let metrics = MetricsRecorder::new();
            let mut tracer = Tracer::new(Box::new(SystemClock::new()));
            tracer.add_sink(Box::new(metrics.clone()));
            emit_workload(&mut tracer, blocks);
            tracer.finish().expect("metrics sink cannot fail");
        }),
        time_kernel("tracer-jsonl", iters, || {
            let mut tracer = Tracer::new(Box::new(SystemClock::new()));
            tracer.add_sink(Box::new(JsonlTraceSink::new(std::io::sink())));
            emit_workload(&mut tracer, blocks);
            tracer.finish().expect("io::sink cannot fail");
        }),
        time_kernel("tracer-full", iters, || {
            let metrics = MetricsRecorder::new();
            let mut tracer = Tracer::new(Box::new(SystemClock::new()));
            tracer.add_sink(Box::new(metrics.clone()));
            tracer.add_sink(Box::new(JsonlTraceSink::new(std::io::sink())));
            let mut shared = SharedObserver::new(tracer);
            emit_workload(&mut shared, blocks);
            shared.finish().expect("in-memory sinks cannot fail");
        }),
    ];
    for required in REQUIRED_KERNELS {
        assert!(
            kernels.iter().any(|k| k.name == required),
            "report is missing required kernel {required}"
        );
    }
    ObsReport {
        blocks,
        events: events_per_workload(blocks),
        kernels,
        peak_rss_kb: peak_rss_kb(),
    }
}

impl ObsReport {
    /// Median ns per single event for kernel `name`, if present.
    pub fn ns_per_event(&self, name: &str) -> Option<u128> {
        self.kernels
            .iter()
            .find(|k| k.name == name)
            .map(|k| k.median_ns_per_op / u128::from(self.events.max(1)))
    }

    /// Render the report as the `datasculpt-bench-obs/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"datasculpt-bench-obs/v1\",\n");
        out.push_str(&format!("  \"blocks\": {},\n", self.blocks));
        out.push_str(&format!("  \"events\": {},\n", self.events));
        out.push_str(&format!("  \"peak_rss_kb\": {},\n", self.peak_rss_kb));
        out.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"median_ns_per_op\": {}, \"ns_per_event\": {}, \"iters\": {}}}{}\n",
                k.name,
                k.median_ns_per_op,
                self.ns_per_event(&k.name).unwrap_or(0),
                k.iters,
                if i + 1 < self.kernels.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_every_required_stack() {
        let report = run_report(50, 1);
        assert_eq!(report.events, 302);
        for k in REQUIRED_KERNELS {
            assert!(report.ns_per_event(k).is_some(), "missing {k}");
        }
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"datasculpt-bench-obs/v1\""));
        assert!(json.contains("\"name\": \"tracer-full\""));
        assert!(json.contains("\"ns_per_event\""));
    }

    #[test]
    fn workload_is_schema_faithful() {
        // The synthetic stream must satisfy the v1 trace validator — the
        // overhead numbers are only meaningful if every layer does the
        // work a real run would make it do.
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Buf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Buf::default();
        let mut tracer = Tracer::new(Box::new(ManualClock::new(10)));
        tracer.add_sink(Box::new(JsonlTraceSink::new(buf.clone())));
        let metrics = MetricsRecorder::new();
        tracer.add_sink(Box::new(metrics.clone()));
        emit_workload(&mut tracer, 3);
        tracer.finish().unwrap();

        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let summary = datasculpt::obs::schema::validate_trace(&text).expect("valid v1 trace");
        assert_eq!(summary.events, events_per_workload(3));

        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.events, events_per_workload(3));
        assert_eq!(snapshot.iterations, 3);
        assert_eq!(snapshot.models["sim"].calls, 3);
        assert_eq!(snapshot.span_hists["generate"].count(), 3);
        assert_eq!(snapshot.model_call_hists["sim"].count(), 3);
    }
}
