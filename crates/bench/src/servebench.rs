//! Traffic simulation for the multi-tenant labeling service, behind
//! `BENCH_serve.json` (schema `datasculpt-bench-serve/v1`).
//!
//! The workload models a fleet of tenants hitting one [`Service`]: each
//! tenant submits one job whose size (query count) is drawn from a
//! Zipfian distribution — most jobs are small, a few are large — against
//! the scripted simulated backend. Budgets are mixed on purpose:
//!
//! * a slice of tenants has **zero** budget (rejected at admission),
//! * a slice has a **shoestring** budget (admitted, then paused by the
//!   gate after its first billed iteration),
//! * the rest are amply funded and run to completion.
//!
//! The drain loop times every scheduling round through the obs
//! [`SystemClock`], yielding completed-job throughput and round-latency
//! percentiles; the budget audit then counts tenants whose committed
//! spend exceeds their submitted budget (the overdraft is bounded by one
//! iteration's cost per job — `docs/serving.md`) and the worst overdraft
//! in nano-USD.
//!
//! Consumers:
//!
//! * `src/bin/servebench.rs` — emits `BENCH_serve.json`.
//! * `scripts/bench.sh serve` — wraps it; `--check` mode runs a small
//!   fleet and validates the schema.

use crate::hotpath::peak_rss_kb;
use datasculpt::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Plenty for any scaled-down job in this bench (one thousand dollars).
const AMPLE: u128 = 1_000_000_000_000;

/// Too little for even one iteration: admits, bills once, pauses.
const SHOESTRING: u128 = 1_000;

/// Dataset scale every job runs at (small on purpose: the bench measures
/// the service, not the pipeline).
const JOB_SCALE: f64 = 0.05;

/// Zipf support: job sizes in queries. `ZIPF_WEIGHTS[k]` ∝ 1/(k+1).
const JOB_QUERIES: [u64; 5] = [1, 2, 3, 4, 5];

/// SplitMix64: the bench's only randomness, fully determined by `seed`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Draw a Zipfian (s = 1) job size from [`JOB_QUERIES`].
fn zipf_queries(state: &mut u64) -> u64 {
    // Cumulative 1/(k+1) weights over the 5 sizes, scaled to integers:
    // 60/30/20/15/12 → cumulative 60, 90, 110, 125, 137.
    const CUM: [u64; 5] = [60, 90, 110, 125, 137];
    let draw = splitmix64(state) % 137;
    for (i, &edge) in CUM.iter().enumerate() {
        if draw < edge {
            return JOB_QUERIES.get(i).copied().unwrap_or(1);
        }
    }
    1
}

/// The budget a simulated tenant submits with. One tenant in 16 has no
/// budget at all, one in 16 has a shoestring budget; the rest are ample.
fn tenant_budget(index: usize) -> u128 {
    match index % 16 {
        0 => 0,
        1 => SHOESTRING,
        _ => AMPLE,
    }
}

/// The full serve-traffic report written as `BENCH_serve.json`.
#[derive(Debug)]
pub struct ServeReport {
    /// Simulated tenants (= submitted jobs).
    pub tenants: usize,
    /// Concurrent execution slots the service scheduled onto.
    pub slots: usize,
    /// Workload seed.
    pub seed: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs rejected at admission (zero remaining budget).
    pub rejected: u64,
    /// Jobs left paused by the budget gate (no top-up arrives).
    pub paused: u64,
    /// Scheduling rounds the drain loop ran.
    pub rounds: u64,
    /// Wall-clock nanoseconds for the whole drain.
    pub total_ns: u128,
    /// Median scheduling-round latency in nanoseconds.
    pub round_p50_ns: u128,
    /// 95th-percentile scheduling-round latency in nanoseconds.
    pub round_p95_ns: u128,
    /// Completed jobs per second, in milli-jobs (integer: 1500 = 1.5/s).
    pub jobs_per_sec_milli: u128,
    /// Tenants whose committed spend exceeds their submitted budget.
    pub budget_violation_tenants: u64,
    /// Worst per-tenant overdraft in nano-USD (bounded by one iteration's
    /// cost per job — the documented admission-control bound).
    pub max_overdraft_nanousd: u128,
    /// Exact global spend across the fleet in nano-USD.
    pub total_cost_nanousd: u128,
    /// Peak RSS of the benchmarking process in kB.
    pub peak_rss_kb: u64,
}

/// Run the traffic simulation: `tenants` one-job tenants over a fresh
/// service with `slots` slots, everything derived from `seed`.
pub fn run_report(tenants: usize, slots: usize, seed: u64) -> ServeReport {
    let tenants = tenants.max(1);
    let state = bench_state_dir(seed);
    let mut service = Service::open(
        &state,
        ServeConfig {
            slots: slots.max(1),
            checkpoint_every: 1,
        },
    )
    .expect("open bench service");

    // Submit the whole fleet up front: one job per tenant, Zipfian size.
    let mut rng = seed ^ 0x00da_7a5c_u64;
    let mut budgets: BTreeMap<String, u128> = BTreeMap::new();
    for i in 0..tenants {
        let tenant = format!("tenant-{i:05}");
        let budget = tenant_budget(i);
        budgets.insert(tenant.clone(), budget);
        service
            .submit(JobRequest {
                tenant,
                dataset: "youtube".to_string(),
                config: "base".to_string(),
                model: "gpt-3.5".to_string(),
                seed: seed.wrapping_add(i as u64),
                scale_bits: JOB_SCALE.to_bits(),
                queries: zipf_queries(&mut rng),
                budget_nanousd: budget,
            })
            .expect("submit bench job");
    }

    // Drain round by round, timing each scheduling round.
    let mut clock = SystemClock::new();
    let t0 = clock.now_ns();
    let mut round_ns: Vec<u128> = Vec::new();
    let mut totals = RoundReport::default();
    while service.has_runnable() {
        let r0 = clock.now_ns();
        let round = service.run_round().expect("bench round");
        round_ns.push(u128::from(clock.now_ns().saturating_sub(r0)));
        totals.admitted += round.admitted;
        totals.rejected += round.rejected;
        totals.completed += round.completed;
        totals.paused += round.paused;
        totals.cancelled += round.cancelled;
        totals.failed += round.failed;
    }
    let total_ns = u128::from(clock.now_ns().saturating_sub(t0));

    // Budget audit: committed spend vs submitted budget, per tenant.
    let mut violations = 0u64;
    let mut max_overdraft = 0u128;
    for (tenant, &budget) in &budgets {
        let spent = service.tenant_account(tenant).spent_nanousd();
        if spent > budget {
            violations += 1;
            max_overdraft = max_overdraft.max(spent - budget);
        }
    }
    let total_cost_nanousd = service.global_ledger().total_cost_nanousd();

    round_ns.sort_unstable();
    let pct = |p: usize| -> u128 {
        if round_ns.is_empty() {
            return 0;
        }
        let idx = (round_ns.len() - 1) * p / 100;
        round_ns.get(idx).copied().unwrap_or(0)
    };
    let jobs_per_sec_milli = (u128::from(totals.completed) * 1_000 * 1_000_000_000)
        .checked_div(total_ns)
        .unwrap_or(0);

    std::fs::remove_dir_all(&state).ok();
    ServeReport {
        tenants,
        slots: slots.max(1),
        seed,
        completed: totals.completed,
        rejected: totals.rejected,
        // Without top-ups a job pauses at most once and never resumes, so
        // the per-round pause tally is the final paused population.
        paused: totals.paused,
        rounds: round_ns.len() as u64,
        total_ns,
        round_p50_ns: pct(50),
        round_p95_ns: pct(95),
        jobs_per_sec_milli,
        budget_violation_tenants: violations,
        max_overdraft_nanousd: max_overdraft,
        total_cost_nanousd,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// A fresh per-process state dir under the system temp dir.
fn bench_state_dir(seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ds_servebench_{}_{seed}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

impl ServeReport {
    /// Render the report as the `datasculpt-bench-serve/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"datasculpt-bench-serve/v1\",\n");
        out.push_str(&format!("  \"tenants\": {},\n", self.tenants));
        out.push_str(&format!("  \"slots\": {},\n", self.slots));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"completed\": {},\n", self.completed));
        out.push_str(&format!("  \"rejected\": {},\n", self.rejected));
        out.push_str(&format!("  \"paused\": {},\n", self.paused));
        out.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        out.push_str(&format!("  \"total_ns\": {},\n", self.total_ns));
        out.push_str(&format!("  \"round_p50_ns\": {},\n", self.round_p50_ns));
        out.push_str(&format!("  \"round_p95_ns\": {},\n", self.round_p95_ns));
        out.push_str(&format!(
            "  \"jobs_per_sec_milli\": {},\n",
            self.jobs_per_sec_milli
        ));
        out.push_str(&format!(
            "  \"budget_violation_tenants\": {},\n",
            self.budget_violation_tenants
        ));
        out.push_str(&format!(
            "  \"max_overdraft_nanousd\": {},\n",
            self.max_overdraft_nanousd
        ));
        out.push_str(&format!(
            "  \"total_cost_nanousd\": {},\n",
            self.total_cost_nanousd
        ));
        out.push_str(&format!("  \"peak_rss_kb\": {}\n", self.peak_rss_kb));
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_draw_stays_in_support_and_skews_small() {
        let mut rng = 7u64;
        let mut counts = [0u64; 6];
        for _ in 0..1_000 {
            let q = zipf_queries(&mut rng) as usize;
            assert!((1..=5).contains(&q));
            if let Some(c) = counts.get_mut(q) {
                *c += 1;
            }
        }
        assert!(counts[1] > counts[5], "size 1 dominates size 5: {counts:?}");
    }

    #[test]
    fn small_fleet_report_partitions_jobs_and_flags_overdrafts() {
        let report = run_report(32, 4, 9);
        assert_eq!(
            report.completed + report.rejected + report.paused,
            report.tenants as u64,
            "{report:?}"
        );
        // 32 tenants → indices 0 and 16 unfunded, 1 and 17 shoestring.
        assert_eq!(report.rejected, 2, "{report:?}");
        assert_eq!(report.paused, 2, "{report:?}");
        // Only shoestring tenants can overdraw, by under one iteration.
        assert_eq!(report.budget_violation_tenants, 2, "{report:?}");
        assert!(report.max_overdraft_nanousd > 0);
        assert!(report.total_cost_nanousd > 0);
        assert!(report.rounds >= 1);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"datasculpt-bench-serve/v1\""));
        assert!(json.contains("\"jobs_per_sec_milli\""));
        assert!(json.contains("\"budget_violation_tenants\""));
        assert!(json.contains("\"peak_rss_kb\""));
    }
}
