//! Experiment harness shared by the table/figure binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table2` | Table 2 — main comparison (LF stats + end model) |
//! | `table3` | Table 3 — LLM ablation on DataSculpt-SC |
//! | `table4` | Table 4 — query-sampler ablation |
//! | `table5` | Table 5 — LF-filter ablation |
//! | `fig3_tokens` | Figure 3 — token usage per method per dataset |
//! | `fig4_cost` | Figure 4 — API cost per method per dataset |
//! | `ablation_design` | design-choice ablations (not a paper table) |
//!
//! The binaries are thin: each declares *what* to run (methods, variants,
//! titles) and hands orchestration to one of the shared drivers here —
//! [`run_matrix`] for the tables, [`run_usage_figure`] for the figures,
//! and [`run_scalar_matrix`] for the design ablations.
//!
//! Environment knobs (all optional):
//!
//! * `DS_SCALE` — dataset scale factor (default `1.0` = Table 1 sizes).
//! * `DS_SEEDS` — number of repeated runs to average (default `5`, §4.1).
//! * `DS_DATASETS` — comma-separated subset, e.g. `youtube,sms`.
//! * `DS_THREADS` — worker threads for the drivers (default: all cores).
//!   Results are identical at every thread count; only wall-clock changes.
//! * `DS_TRACE` — write a JSONL trace of the driver run to this path
//!   (schema: `docs/trace-schema.md`; validate with `datasculpt
//!   trace-check`).
//!
//! Results are printed as aligned text tables and also written as CSV under
//! `results/`. Every driver also observes itself through a [`BenchTrace`]
//! — one `bench` stage span per dataset cell — and drops the aggregated
//! per-stage metrics as `results/<tag>.metrics.json` next to the CSV.

// Experiment driver, not a library: aborting on a malformed spec is correct.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::core::eval::evaluate_matrix;
use datasculpt::prelude::*;
use std::io::Write as _;

pub mod hotpath;
pub mod obsbench;
pub mod servebench;

/// One method's averaged outcome on one dataset (a column of a table).
#[derive(Debug, Clone, Copy, Default)]
pub struct Outcome {
    /// Number of LFs.
    pub n_lfs: f64,
    /// Mean per-LF train accuracy (None when train GT unavailable).
    pub lf_acc: Option<f64>,
    /// Mean per-LF coverage.
    pub lf_cov: f64,
    /// Total coverage.
    pub total_cov: f64,
    /// End-model test metric.
    pub end_metric: f64,
    /// Prompt tokens consumed.
    pub prompt_tokens: f64,
    /// Completion tokens consumed.
    pub completion_tokens: f64,
    /// API cost in USD.
    pub cost_usd: f64,
}

impl Outcome {
    /// Total tokens.
    pub fn tokens(&self) -> f64 {
        self.prompt_tokens + self.completion_tokens
    }
}

/// Average a set of per-seed outcomes.
pub fn average(outcomes: &[Outcome]) -> Outcome {
    assert!(!outcomes.is_empty(), "no outcomes to average");
    let n = outcomes.len() as f64;
    let accs: Vec<f64> = outcomes.iter().filter_map(|o| o.lf_acc).collect();
    Outcome {
        n_lfs: outcomes.iter().map(|o| o.n_lfs).sum::<f64>() / n,
        lf_acc: if accs.is_empty() {
            None
        } else {
            Some(accs.iter().sum::<f64>() / accs.len() as f64)
        },
        lf_cov: outcomes.iter().map(|o| o.lf_cov).sum::<f64>() / n,
        total_cov: outcomes.iter().map(|o| o.total_cov).sum::<f64>() / n,
        end_metric: outcomes.iter().map(|o| o.end_metric).sum::<f64>() / n,
        prompt_tokens: outcomes.iter().map(|o| o.prompt_tokens).sum::<f64>() / n,
        completion_tokens: outcomes.iter().map(|o| o.completion_tokens).sum::<f64>() / n,
        cost_usd: outcomes.iter().map(|o| o.cost_usd).sum::<f64>() / n,
    }
}

/// Harness configuration from the environment.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Dataset scale factor.
    pub scale: f64,
    /// Seeds per cell.
    pub seeds: u64,
    /// Datasets to run.
    pub datasets: Vec<DatasetName>,
    /// Worker threads for the drivers (`DS_THREADS`, default all cores).
    pub threads: usize,
}

impl HarnessConfig {
    /// Read `DS_SCALE`, `DS_SEEDS`, `DS_DATASETS`, `DS_THREADS`.
    pub fn from_env() -> Self {
        let scale = std::env::var("DS_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0);
        let seeds = std::env::var("DS_SEEDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5)
            .max(1);
        let datasets = std::env::var("DS_DATASETS")
            .ok()
            .map(|v| {
                v.split(',')
                    .filter_map(|s| DatasetName::parse(s.trim()))
                    .collect()
            })
            .filter(|v: &Vec<_>| !v.is_empty())
            .unwrap_or_else(|| DatasetName::ALL.to_vec());
        let threads = std::env::var("DS_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| Pool::auto().threads());
        Self {
            scale,
            seeds,
            datasets,
            threads,
        }
    }

    /// The worker pool the drivers fan out on.
    pub fn pool(&self) -> Pool {
        Pool::new(self.threads)
    }

    /// Load a dataset at the configured scale.
    pub fn load(&self, name: DatasetName, seed: u64) -> TextDataset {
        if (self.scale - 1.0).abs() < 1e-12 {
            name.load(seed)
        } else {
            name.load_scaled(seed, self.scale)
        }
    }
}

fn outcome_from_eval(eval: &PwsEvaluation, ledger: Option<&UsageLedger>) -> Outcome {
    let usage = ledger.map(|l| l.total_usage()).unwrap_or_default();
    Outcome {
        n_lfs: eval.lf_stats.n_lfs as f64,
        lf_acc: eval.lf_stats.lf_accuracy,
        lf_cov: eval.lf_stats.lf_coverage,
        total_cov: eval.lf_stats.total_coverage,
        end_metric: eval.end_metric,
        prompt_tokens: usage.prompt_tokens as f64,
        completion_tokens: usage.completion_tokens as f64,
        cost_usd: ledger.map(|l| l.total_cost_usd()).unwrap_or(0.0),
    }
}

/// One WRENCH-expert run.
pub fn run_wrench(dataset: &TextDataset) -> Outcome {
    let name = DatasetName::parse(dataset.spec.name).expect("known dataset");
    let mut set = LfSet::new(dataset, FilterConfig::validity_only());
    for lf in wrench_expert_lfs(dataset, wrench_lf_count(name)) {
        set.try_add(lf);
    }
    let eval = evaluate_lf_set(dataset, &set, &EvalConfig::default());
    outcome_from_eval(&eval, None)
}

/// One ScriptoriumWS run.
pub fn run_scriptorium(dataset: &TextDataset, model: ModelId, seed: u64) -> Outcome {
    let name = DatasetName::parse(dataset.spec.name).expect("known dataset");
    let mut llm = SimulatedLlm::new(model, dataset.generative.clone(), seed);
    let result = scriptorium_run(
        dataset,
        &mut llm,
        datasculpt::baselines::scriptorium::scriptorium_lf_count(name),
    )
    .expect("the simulated model does not fail");
    let mut set = LfSet::new(dataset, FilterConfig::validity_only());
    for lf in result.lfs {
        set.try_add(lf);
    }
    let eval = evaluate_lf_set(dataset, &set, &EvalConfig::default());
    outcome_from_eval(&eval, Some(&result.ledger))
}

/// One PromptedLF run.
pub fn run_promptedlf(dataset: &TextDataset, model: ModelId, seed: u64) -> Outcome {
    let mut llm = SimulatedLlm::new(model, dataset.generative.clone(), seed);
    let result = promptedlf_run(dataset, &mut llm);
    let eval = evaluate_matrix(dataset, &result.matrix, &EvalConfig::default());
    outcome_from_eval(&eval, Some(&result.ledger))
}

/// One DataSculpt run under an arbitrary configuration.
pub fn run_datasculpt(
    dataset: &TextDataset,
    mut config: DataSculptConfig,
    model: ModelId,
    seed: u64,
) -> Outcome {
    config.seed = seed;
    let mut llm = SimulatedLlm::new(model, dataset.generative.clone(), seed);
    let run = DataSculpt::new(dataset, config)
        .run(&mut llm)
        .expect("the simulated model does not fail");
    let eval = evaluate_lf_set(dataset, &run.lf_set, &EvalConfig::default());
    outcome_from_eval(&eval, Some(&run.ledger))
}

/// Run `f` for each seed on the exec pool and average in seed order.
pub fn run_seeds<F>(seeds: u64, f: F) -> Outcome
where
    F: Fn(u64) -> Outcome + Sync,
{
    let outcomes = Pool::auto()
        .try_run(seeds as usize, |s| f(s as u64))
        .unwrap_or_else(|e| panic!("seed run: {e}"));
    average(&outcomes)
}

/// Run a ledger-producing `f` for each seed on the exec pool and merge
/// the exact per-model ledgers in seed order (integer nano-USD all the
/// way; floats only at display).
pub fn run_seeds_ledger<F>(seeds: u64, f: F) -> UsageLedger
where
    F: Fn(u64) -> UsageLedger + Sync,
{
    let ledgers = Pool::auto()
        .try_run(seeds as usize, |s| f(s as u64))
        .unwrap_or_else(|e| panic!("seed run: {e}"));
    let mut total = UsageLedger::new();
    for l in &ledgers {
        total.merge(l);
    }
    total
}

/// Self-observation for a bench driver: one `bench` stage span per dataset
/// cell feeds a [`MetricsRecorder`] (and, with `DS_TRACE=<path>`, a JSONL
/// file sink). [`finish`](Self::finish) drops the aggregated metrics as
/// `results/<tag>.metrics.json` next to the driver's CSV.
pub struct BenchTrace {
    tag: String,
    tracer: Tracer,
    metrics: MetricsRecorder,
    cells: u64,
}

impl BenchTrace {
    /// Start observing a driver run over `datasets` cells.
    pub fn begin(tag: &str, model: &str, datasets: &[DatasetName]) -> Self {
        let metrics = MetricsRecorder::new();
        let mut tracer = Tracer::new(Box::new(SystemClock::new()));
        tracer.add_sink(Box::new(metrics.clone()));
        if let Ok(path) = std::env::var("DS_TRACE") {
            match JsonlTraceSink::to_file(&path) {
                Ok(sink) => tracer.add_sink(Box::new(sink)),
                Err(e) => eprintln!("[{tag}] cannot open DS_TRACE file '{path}': {e}"),
            }
        }
        tracer.on_event(&Event::RunBegin {
            label: tag.to_string(),
            dataset: datasets
                .iter()
                .map(|d| d.as_str())
                .collect::<Vec<_>>()
                .join(","),
            model: model.to_string(),
            queries: datasets.len() as u64,
            seed: 0,
        });
        BenchTrace {
            tag: tag.to_string(),
            tracer,
            metrics,
            cells: 0,
        }
    }

    /// Open the `bench` span for dataset cell `di`.
    pub fn cell_begin(&mut self, di: usize) {
        self.tracer.on_event(&Event::StageBegin {
            iter: di as u64,
            stage: Stage::Bench,
        });
    }

    /// Close the `bench` span for dataset cell `di`.
    pub fn cell_end(&mut self, di: usize) {
        self.tracer.on_event(&Event::StageEnd {
            iter: di as u64,
            stage: Stage::Bench,
        });
        self.cells += 1;
    }

    /// Record a cell's merged ledger as per-model usage events.
    pub fn usage(&mut self, ledger: &UsageLedger) {
        for (model, usage) in ledger.per_model() {
            self.tracer.on_event(&Event::Usage {
                model: model.api_name().to_string(),
                prompt_tokens: usage.prompt_tokens,
                completion_tokens: usage.completion_tokens,
                cost_nanousd: PricingTable::cost_nanousd(
                    model,
                    usage.prompt_tokens,
                    usage.completion_tokens,
                ),
            });
        }
    }

    /// Close the run span, flush the sinks, and write
    /// `results/<tag>.metrics.json`.
    pub fn finish(mut self) {
        self.tracer.on_event(&Event::RunEnd {
            iterations: self.cells,
            failed: 0,
            lfs: 0,
        });
        if let Err(e) = self.tracer.finish() {
            eprintln!("[{}] trace sink failed: {e}", self.tag);
        }
        let path = format!("results/{}.metrics.json", self.tag);
        let write = std::fs::create_dir_all("results")
            .and_then(|()| std::fs::write(&path, self.metrics.to_json() + "\n"));
        match write {
            Ok(()) => eprintln!("[{}] wrote {path}", self.tag),
            Err(e) => eprintln!("[{}] cannot write {path}: {e}", self.tag),
        }
    }
}

/// LF generation only (no label-model / end-model evaluation): the exact
/// token and cost ledger needed by Figures 3–4.
pub fn generation_ledger(
    dataset: &TextDataset,
    method: &str,
    model: ModelId,
    seed: u64,
) -> UsageLedger {
    match method {
        "ScriptoriumWS" => {
            let name = DatasetName::parse(dataset.spec.name).expect("known dataset");
            let mut llm = SimulatedLlm::new(model, dataset.generative.clone(), seed);
            scriptorium_run(
                dataset,
                &mut llm,
                datasculpt::baselines::scriptorium::scriptorium_lf_count(name),
            )
            .expect("the simulated model does not fail")
            .ledger
        }
        "PromptedLF" => {
            let mut llm = SimulatedLlm::new(model, dataset.generative.clone(), seed);
            promptedlf_run(dataset, &mut llm).ledger
        }
        "DataSculpt-Base" | "DataSculpt-CoT" | "DataSculpt-SC" | "DataSculpt-KATE" => {
            let mut config = match method {
                "DataSculpt-Base" => DataSculptConfig::base(seed),
                "DataSculpt-CoT" => DataSculptConfig::cot(seed),
                "DataSculpt-SC" => DataSculptConfig::sc(seed),
                _ => DataSculptConfig::kate(seed),
            };
            config.seed = seed;
            let mut llm = SimulatedLlm::new(model, dataset.generative.clone(), seed);
            DataSculpt::new(dataset, config)
                .run(&mut llm)
                .expect("the simulated model does not fail")
                .ledger
        }
        other => panic!("unknown method {other}"),
    }
}

/// [`generation_ledger`] reduced to an [`Outcome`] (token/cost fields
/// only); the USD figure comes from the ledger's exact nano-USD total via
/// the shared `datasculpt_obs::cost` display boundary.
pub fn generation_usage(dataset: &TextDataset, method: &str, model: ModelId, seed: u64) -> Outcome {
    outcome_from_ledger(&generation_ledger(dataset, method, model, seed), 1)
}

/// Token/cost [`Outcome`] for a ledger merged over `seeds` runs (per-seed
/// average; exact integer arithmetic until the final division).
fn outcome_from_ledger(ledger: &UsageLedger, seeds: u64) -> Outcome {
    let usage = ledger.total_usage();
    let n = seeds.max(1) as f64;
    Outcome {
        prompt_tokens: usage.prompt_tokens as f64 / n,
        completion_tokens: usage.completion_tokens as f64 / n,
        cost_usd: datasculpt::obs::cost::nanousd_to_usd(ledger.total_cost_nanousd()) / n,
        ..Default::default()
    }
}

/// The API-consuming methods of Figures 3–4 (WRENCH is manual, no tokens).
pub const USAGE_METHODS: [&str; 6] = [
    "ScriptoriumWS",
    "PromptedLF",
    "DataSculpt-Base",
    "DataSculpt-CoT",
    "DataSculpt-SC",
    "DataSculpt-KATE",
];

/// Render a log-scale horizontal bar for a positive value.
pub fn log_bar(value: f64, max_value: f64, width: usize) -> String {
    if value <= 0.0 || max_value <= 0.0 {
        return String::new();
    }
    let lo = 1.0f64; // one token / one micro-dollar floor
    let frac = ((value.max(lo)).ln() / (max_value.max(lo)).ln()).clamp(0.0, 1.0);
    "#".repeat(((width as f64) * frac).round() as usize)
}

/// The metric blocks of Tables 2–5, in paper order.
pub const METRIC_BLOCKS: [&str; 5] = ["#LFs", "LF Acc.", "LF Cov.", "Total Cov.", "EM Acc/F1"];

/// Extract metric block `b` from an outcome, rendered like the paper.
pub fn metric_cell(block: &str, o: &Outcome) -> String {
    match block {
        "#LFs" => format!("{:.0}", o.n_lfs),
        "LF Acc." => o.lf_acc.map_or("-".to_string(), |a| format!("{a:.3}")),
        "LF Cov." => format!("{:.3}", o.lf_cov),
        "Total Cov." => format!("{:.3}", o.total_cov),
        "EM Acc/F1" => format!("{:.3}", o.end_metric),
        other => panic!("unknown metric block {other}"),
    }
}

/// Numeric value of a metric block (for the AVG column).
pub fn metric_value(block: &str, o: &Outcome) -> Option<f64> {
    match block {
        "#LFs" => Some(o.n_lfs),
        "LF Acc." => o.lf_acc,
        "LF Cov." => Some(o.lf_cov),
        "Total Cov." => Some(o.total_cov),
        "EM Acc/F1" => Some(o.end_metric),
        _ => None,
    }
}

/// A fully-populated results grid: `results[method][dataset]`.
pub struct Grid {
    /// Method display names (row groups).
    pub methods: Vec<String>,
    /// Dataset column headers.
    pub datasets: Vec<DatasetName>,
    /// `results[method][dataset]`.
    pub results: Vec<Vec<Outcome>>,
}

impl Grid {
    /// Render the paper-style table: metric blocks × methods × datasets,
    /// with an AVG column.
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{title}\n"));
        let header_width = 12 + self.methods.iter().map(|m| m.len()).max().unwrap_or(10);
        out.push_str(&format!("{:<w$}", "Metric/Method", w = header_width));
        for d in &self.datasets {
            let label = match d {
                DatasetName::Sms => "SMS(F1)".to_string(),
                DatasetName::Spouse => "Spouse(F1)".to_string(),
                other => {
                    let s = other.as_str();
                    let mut c = s.chars();
                    c.next()
                        .map(|f| f.to_uppercase().collect::<String>() + c.as_str())
                        .unwrap_or_default()
                }
            };
            out.push_str(&format!("{label:>12}"));
        }
        out.push_str(&format!("{:>12}\n", "AVG"));
        for block in METRIC_BLOCKS {
            out.push_str(&format!(
                "{}\n",
                "-".repeat(header_width + 12 * (self.datasets.len() + 1))
            ));
            for (mi, method) in self.methods.iter().enumerate() {
                out.push_str(&format!(
                    "{:<w$}",
                    format!("{block} {method}"),
                    w = header_width
                ));
                let mut vals = Vec::new();
                for (di, _) in self.datasets.iter().enumerate() {
                    let Some(o) = self.results.get(mi).and_then(|r| r.get(di)) else {
                        continue;
                    };
                    out.push_str(&format!("{:>12}", metric_cell(block, o)));
                    if let Some(v) = metric_value(block, o) {
                        vals.push(v);
                    }
                }
                let avg = if vals.is_empty() {
                    "-".to_string()
                } else {
                    let v = vals.iter().sum::<f64>() / vals.len() as f64;
                    if block == "#LFs" {
                        format!("{v:.1}")
                    } else {
                        format!("{v:.3}")
                    }
                };
                out.push_str(&format!("{avg:>12}\n"));
            }
        }
        out
    }

    /// Write the grid (all metric blocks) as CSV.
    pub fn write_csv(&self, path: &str) -> std::io::Result<()> {
        if let Some(dir) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(
            f,
            "metric,method,{},avg",
            self.datasets
                .iter()
                .map(|d| d.as_str())
                .collect::<Vec<_>>()
                .join(",")
        )?;
        for block in METRIC_BLOCKS {
            for (mi, method) in self.methods.iter().enumerate() {
                let mut cells = Vec::new();
                let mut vals = Vec::new();
                for (di, _) in self.datasets.iter().enumerate() {
                    let Some(o) = self.results.get(mi).and_then(|r| r.get(di)) else {
                        continue;
                    };
                    cells.push(metric_cell(block, o));
                    if let Some(v) = metric_value(block, o) {
                        vals.push(v);
                    }
                }
                let avg = if vals.is_empty() {
                    "-".to_string()
                } else {
                    format!("{:.4}", vals.iter().sum::<f64>() / vals.len() as f64)
                };
                writeln!(f, "{block},{method},{},{avg}", cells.join(","))?;
            }
        }
        Ok(())
    }
}

/// A boxed per-cell runner: dataset + seed → averaged outcome.
type MethodFn<'a> = Box<dyn Fn(&TextDataset, u64) -> Outcome + Sync + 'a>;

/// One row of a Tables 2–5 style experiment: a display label plus the
/// runner for one cell.
pub struct MethodSpec<'a> {
    label: String,
    run: MethodFn<'a>,
    seeded: bool,
}

impl<'a> MethodSpec<'a> {
    /// A method whose cells are averaged over the harness's seeds.
    pub fn seeded(
        label: impl Into<String>,
        run: impl Fn(&TextDataset, u64) -> Outcome + Sync + 'a,
    ) -> Self {
        MethodSpec {
            label: label.into(),
            run: Box::new(run),
            seeded: true,
        }
    }

    /// A deterministic method, run once per dataset.
    pub fn deterministic(
        label: impl Into<String>,
        run: impl Fn(&TextDataset) -> Outcome + Sync + 'a,
    ) -> Self {
        MethodSpec {
            label: label.into(),
            run: Box::new(move |d, _| run(d)),
            seeded: false,
        }
    }

    /// The display label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// The shared run-matrix driver behind the `table*` binaries: run every
/// method on every configured dataset (seeded methods averaged over
/// `cfg.seeds` parallel runs), print the paper-style grid under `title`,
/// and write `results/<tag>.csv`.
pub fn run_matrix(
    tag: &str,
    title: &str,
    methods: Vec<MethodSpec<'_>>,
    cfg: &HarnessConfig,
) -> Grid {
    let pool = cfg.pool();
    // Wall time flows through the obs Clock (ds-lint wall-clock rule):
    // SystemClock is the workspace's single raw-clock site.
    let mut clock = SystemClock::new();
    let t0_ns = clock.now_ns();
    // Datasets are loaded up-front so the parallel region below is pure
    // compute over shared immutable state.
    let datasets: Vec<TextDataset> = cfg.datasets.iter().map(|&n| cfg.load(n, 0)).collect();
    // Flatten every (dataset, method, seed) run into one task list: whole
    // grid cells fan out, not just the seeds within a cell.
    let mut tasks: Vec<(usize, usize, u64)> = Vec::new();
    for di in 0..datasets.len() {
        for (mi, m) in methods.iter().enumerate() {
            let seeds = if m.seeded { cfg.seeds } else { 1 };
            for s in 0..seeds {
                tasks.push((di, mi, s));
            }
        }
    }
    let outcomes = pool
        .try_map(&tasks, |_, &(di, mi, s)| {
            match (datasets.get(di), methods.get(mi)) {
                (Some(d), Some(m)) => (m.run)(d, s),
                _ => Outcome::default(),
            }
        })
        .unwrap_or_else(|e| panic!("bench worker: {e}"));
    // Regroup the flat outcomes: tasks were emitted in (dataset, method,
    // seed) order and `try_map` preserves input order, so per-cell seed
    // lists come back in seed order and the averages match a serial run.
    let mut per_cell: Vec<Vec<Vec<Outcome>>> =
        vec![vec![Vec::new(); methods.len()]; datasets.len()];
    for (&(di, mi, _), o) in tasks.iter().zip(outcomes) {
        if let Some(cell) = per_cell.get_mut(di).and_then(|r| r.get_mut(mi)) {
            cell.push(o);
        }
    }
    let results: Vec<Vec<Outcome>> = (0..methods.len())
        .map(|mi| {
            (0..datasets.len())
                .map(|di| {
                    per_cell
                        .get(di)
                        .and_then(|r| r.get(mi))
                        .map(|c| average(c))
                        .unwrap_or_default()
                })
                .collect()
        })
        .collect();
    // Trace replay happens after the parallel region, in dataset order —
    // the documented merge order (docs/trace-schema.md). The event
    // sequence (and so every seq number) is identical at every thread
    // count, including serial.
    let mut trace = BenchTrace::begin(tag, "-", &cfg.datasets);
    for (di, &name) in cfg.datasets.iter().enumerate() {
        trace.cell_begin(di);
        trace.cell_end(di);
        eprintln!("[{tag}] {name} done");
    }
    eprintln!(
        "[{tag}] {} runs done in {:.1?} on {} thread(s)",
        tasks.len(),
        std::time::Duration::from_nanos(clock.now_ns().saturating_sub(t0_ns)),
        pool.threads()
    );
    let grid = Grid {
        methods: methods.into_iter().map(|m| m.label).collect(),
        datasets: cfg.datasets.clone(),
        results,
    };
    println!("{}", grid.render(title));
    let path = format!("results/{tag}.csv");
    grid.write_csv(&path)
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("[{tag}] wrote {path}");
    trace.finish();
    grid
}

/// How a figure binary labels and formats the usage matrix it collects
/// (Figures 3–4 differ only in the scalar plotted and its rendering).
pub struct FigureSpec {
    /// Log prefix, e.g. `fig3`.
    pub tag: &'static str,
    /// CSV stem: results land in `results/<csv_stem>.csv`.
    pub csv_stem: &'static str,
    /// Console title.
    pub title: String,
    /// The scalar plotted per (method, dataset) cell.
    pub value: fn(&Outcome) -> f64,
    /// Render one value on a bar-chart line.
    pub cell: fn(f64) -> String,
    /// Multiplier applied before the log-scale bar (micro-dollars for
    /// Figure 4 so $0.01 and $100 both render).
    pub bar_scale: f64,
    /// Render one value (and row total) in the CSV.
    pub csv_cell: fn(f64) -> String,
    /// Render one per-method total on the console.
    pub total_cell: fn(f64) -> String,
}

/// The shared driver behind the `fig*` binaries: collect the
/// [`USAGE_METHODS`] × datasets usage matrix, print log-scale bars and
/// per-method totals, write the CSV, and return each method's exact
/// merged [`UsageLedger`] for any epilogue (Figure 4 prints a per-model
/// cost breakdown and a cost ratio from it).
pub fn run_usage_figure(
    spec: &FigureSpec,
    cfg: &HarnessConfig,
    model: ModelId,
) -> Vec<UsageLedger> {
    let pool = cfg.pool();
    let datasets: Vec<TextDataset> = cfg.datasets.iter().map(|&n| cfg.load(n, 0)).collect();
    // Fan out every (dataset, method, seed) generation run, then merge
    // each cell's ledgers in seed order (exact integer arithmetic, same
    // totals as the serial loop).
    let mut tasks: Vec<(usize, usize, u64)> = Vec::new();
    for di in 0..datasets.len() {
        for mi in 0..USAGE_METHODS.len() {
            for s in 0..cfg.seeds {
                tasks.push((di, mi, s));
            }
        }
    }
    let run_ledgers = pool
        .try_map(&tasks, |_, &(di, mi, s)| {
            match (datasets.get(di), USAGE_METHODS.get(mi)) {
                (Some(d), Some(&m)) => generation_ledger(d, m, model, s),
                _ => UsageLedger::new(),
            }
        })
        .unwrap_or_else(|e| panic!("bench worker: {e}"));
    let mut merged_cells: Vec<Vec<UsageLedger>> =
        vec![vec![UsageLedger::new(); USAGE_METHODS.len()]; datasets.len()];
    for (&(di, mi, _), l) in tasks.iter().zip(&run_ledgers) {
        if let Some(cell) = merged_cells.get_mut(di).and_then(|r| r.get_mut(mi)) {
            cell.merge(l);
        }
    }
    // Post-parallel trace replay in dataset order (the documented merge
    // order, docs/trace-schema.md): usage events sit inside their cell
    // span exactly as in a serial run.
    let mut values: Vec<Vec<f64>> = vec![Vec::new(); USAGE_METHODS.len()];
    let mut ledgers: Vec<UsageLedger> = vec![UsageLedger::new(); USAGE_METHODS.len()];
    let mut trace = BenchTrace::begin(spec.tag, model.api_name(), &cfg.datasets);
    for (di, &name) in cfg.datasets.iter().enumerate() {
        trace.cell_begin(di);
        let cell_row = merged_cells.get(di).map(Vec::as_slice).unwrap_or(&[]);
        for (mi, merged) in cell_row.iter().enumerate() {
            trace.usage(merged);
            if let Some(col) = values.get_mut(mi) {
                col.push((spec.value)(&outcome_from_ledger(merged, cfg.seeds)));
            }
            if let Some(l) = ledgers.get_mut(mi) {
                l.merge(merged);
            }
        }
        trace.cell_end(di);
        eprintln!("[{}] {name} done", spec.tag);
    }

    let max = values.iter().flatten().cloned().fold(0.0f64, f64::max) * spec.bar_scale;
    println!("{}\n", spec.title);
    for (di, name) in cfg.datasets.iter().enumerate() {
        println!("{name}:");
        for (mi, method) in USAGE_METHODS.iter().enumerate() {
            let v = values
                .get(mi)
                .and_then(|c| c.get(di))
                .copied()
                .unwrap_or(0.0);
            println!(
                "  {method:<16} {} |{}",
                (spec.cell)(v),
                log_bar(v * spec.bar_scale, max, 48)
            );
        }
    }
    let totals: Vec<f64> = values.iter().map(|row| row.iter().sum()).collect();
    println!("\ntotals across datasets:");
    for (method, total) in USAGE_METHODS.iter().zip(&totals) {
        println!("  {method:<16} {}", (spec.total_cell)(*total));
    }

    let path = format!("results/{}.csv", spec.csv_stem);
    std::fs::create_dir_all("results").expect("results dir");
    let mut f = std::fs::File::create(&path).expect("csv file");
    writeln!(
        f,
        "method,{},total",
        cfg.datasets
            .iter()
            .map(|d| d.as_str())
            .collect::<Vec<_>>()
            .join(",")
    )
    .expect("csv header");
    for (mi, method) in USAGE_METHODS.iter().enumerate() {
        writeln!(
            f,
            "{method},{},{}",
            values
                .get(mi)
                .map(Vec::as_slice)
                .unwrap_or(&[])
                .iter()
                .map(|v| (spec.csv_cell)(*v))
                .collect::<Vec<_>>()
                .join(","),
            (spec.csv_cell)(totals.get(mi).copied().unwrap_or(0.0))
        )
        .expect("csv row");
    }
    eprintln!("[{}] wrote {path}", spec.tag);
    trace.finish();
    ledgers
}

/// The shared driver behind `ablation_design`: a scalar-valued
/// rows × datasets matrix where per-dataset setup (an LF set, say) is
/// computed once and shared across all rows. Prints an aligned table and
/// writes `results/<tag>.csv`.
pub fn run_scalar_matrix<S>(
    tag: &str,
    title: &str,
    rows: &[String],
    datasets: &[DatasetName],
    cfg: &HarnessConfig,
    setup: impl Fn(&TextDataset) -> S + Sync,
    cell: impl Fn(&S, &TextDataset, usize) -> f64 + Sync,
) -> Vec<Vec<f64>> {
    let pool = cfg.pool();
    let loaded: Vec<TextDataset> = datasets.iter().map(|&n| cfg.load(n, 0)).collect();
    // One task per dataset: the shared per-dataset state never crosses a
    // thread, so `S` needs no Send/Sync bound.
    let columns = pool
        .try_map(&loaded, |_, dataset| {
            let state = setup(dataset);
            (0..rows.len())
                .map(|ri| cell(&state, dataset, ri))
                .collect::<Vec<f64>>()
        })
        .unwrap_or_else(|e| panic!("bench worker: {e}"));
    let mut results: Vec<Vec<f64>> = vec![Vec::new(); rows.len()];
    for column in &columns {
        for (ri, v) in column.iter().enumerate() {
            if let Some(row) = results.get_mut(ri) {
                row.push(*v);
            }
        }
    }
    // Post-parallel trace replay in dataset order (docs/trace-schema.md).
    let mut trace = BenchTrace::begin(tag, "-", datasets);
    for (di, &name) in datasets.iter().enumerate() {
        trace.cell_begin(di);
        trace.cell_end(di);
        eprintln!("[{tag}] {name} done");
    }

    let w = rows.iter().map(|r| r.len()).max().unwrap_or(10).max(10) + 2;
    println!("{title}\n");
    print!("{:<w$}", "variant");
    for d in datasets {
        print!("{:>10}", d.as_str());
    }
    println!();
    for (label, rvals) in rows.iter().zip(&results) {
        print!("{label:<w$}");
        for v in rvals {
            print!("{v:>10.3}");
        }
        println!();
    }

    let path = format!("results/{tag}.csv");
    std::fs::create_dir_all("results").expect("results dir");
    let mut f = std::fs::File::create(&path).expect("csv file");
    writeln!(
        f,
        "variant,{}",
        datasets
            .iter()
            .map(|d| d.as_str())
            .collect::<Vec<_>>()
            .join(",")
    )
    .expect("csv header");
    for (label, rvals) in rows.iter().zip(&results) {
        writeln!(
            f,
            "{label},{}",
            rvals
                .iter()
                .map(|v| format!("{v:.4}"))
                .collect::<Vec<_>>()
                .join(",")
        )
        .expect("csv row");
    }
    eprintln!("[{tag}] wrote {path}");
    trace.finish();
    results
}

/// The evaluation-stack variants quantified by the `ablation_design`
/// binary (see DESIGN.md): label-model choices and EM stability guards,
/// end-model target/weight choices, and the feature order.
pub fn design_variants() -> Vec<(&'static str, EvalConfig)> {
    let base = EvalConfig::default();
    let metal = |f: fn(&mut MetalConfig)| {
        let mut mc = MetalConfig::default();
        f(&mut mc);
        EvalConfig {
            label_model: LabelModelKind::Metal(mc),
            ..base
        }
    };
    vec![
        ("default (EM, guards on)", base),
        (
            "EM: no accuracy-tilt prior",
            metal(|m| m.accuracy_tilt = 1.0),
        ),
        (
            "EM: full abstain evidence",
            metal(|m| m.abstain_evidence_scale = 1.0),
        ),
        ("EM: undamped updates", metal(|m| m.update_damping = 1.0)),
        (
            "label model: majority vote",
            EvalConfig {
                label_model: LabelModelKind::Majority,
                ..base
            },
        ),
        (
            "label model: triplet",
            EvalConfig {
                label_model: LabelModelKind::Triplet,
                ..base
            },
        ),
        (
            "end model: soft targets",
            EvalConfig {
                hard_targets: false,
                ..base
            },
        ),
        (
            "end model: unbalanced weights",
            EvalConfig {
                balanced_weights: false,
                ..base
            },
        ),
        (
            "features: bigrams",
            EvalConfig {
                feature_order: 2,
                ..base
            },
        ),
        (
            "end model: MLP (64 hidden)",
            EvalConfig {
                end_model: EndModelKind::Mlp { hidden: 64 },
                ..base
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_pools_and_skips_missing_acc() {
        let a = Outcome {
            n_lfs: 10.0,
            lf_acc: Some(0.8),
            end_metric: 0.9,
            ..Default::default()
        };
        let b = Outcome {
            n_lfs: 20.0,
            lf_acc: None,
            end_metric: 0.7,
            ..Default::default()
        };
        let avg = average(&[a, b]);
        assert_eq!(avg.n_lfs, 15.0);
        assert_eq!(avg.lf_acc, Some(0.8));
        assert!((avg.end_metric - 0.8).abs() < 1e-12);
    }

    #[test]
    fn metric_cells_render_like_the_paper() {
        let o = Outcome {
            n_lfs: 108.0,
            lf_acc: Some(0.735),
            lf_cov: 0.021,
            total_cov: 0.82,
            end_metric: 0.879,
            ..Default::default()
        };
        assert_eq!(metric_cell("#LFs", &o), "108");
        assert_eq!(metric_cell("LF Acc.", &o), "0.735");
        assert_eq!(metric_cell("LF Cov.", &o), "0.021");
        assert_eq!(metric_cell("Total Cov.", &o), "0.820");
        assert_eq!(metric_cell("EM Acc/F1", &o), "0.879");
        let none = Outcome::default();
        assert_eq!(metric_cell("LF Acc.", &none), "-");
    }

    #[test]
    fn grid_renders_and_writes_csv() {
        let grid = Grid {
            methods: vec!["A".into(), "B".into()],
            datasets: vec![DatasetName::Youtube, DatasetName::Sms],
            results: vec![
                vec![Outcome::default(), Outcome::default()],
                vec![Outcome::default(), Outcome::default()],
            ],
        };
        let rendered = grid.render("test table");
        assert!(rendered.contains("Youtube"));
        assert!(rendered.contains("SMS(F1)"));
        assert!(rendered.contains("#LFs A"));
        let path = std::env::temp_dir().join("ds_grid_test.csv");
        grid.write_csv(path.to_str().expect("utf8 path"))
            .expect("csv written");
        let content = std::fs::read_to_string(&path).expect("read back");
        assert!(content.starts_with("metric,method,youtube,sms,avg"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn harness_env_defaults() {
        // Only check defaults (env vars unset in tests).
        let cfg = HarnessConfig::from_env();
        assert!(cfg.seeds >= 1);
        assert!(cfg.scale > 0.0);
        assert!(!cfg.datasets.is_empty());
        assert!(cfg.threads >= 1);
        assert_eq!(cfg.pool().threads(), cfg.threads);
    }

    #[test]
    fn run_seeds_averages_in_parallel() {
        let o = run_seeds(4, |s| Outcome {
            n_lfs: s as f64,
            ..Default::default()
        });
        assert!((o.n_lfs - 1.5).abs() < 1e-12);
    }
}
