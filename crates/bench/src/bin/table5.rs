//! Regenerates **Table 5**: the LF-filter ablation — DataSculpt-SC with all
//! filters, without the accuracy filter, and without the redundancy filter
//! (§3.5).
//!
//! ```text
//! cargo run -p datasculpt-bench --release --bin table5
//! ```

use datasculpt::prelude::*;
use datasculpt_bench::*;
use std::time::Instant;

fn main() {
    let cfg = HarnessConfig::from_env();
    let model = ModelId::Gpt35Turbo;
    let variants: [(&str, FilterConfig); 3] = [
        ("all", FilterConfig::all()),
        ("no accuracy", FilterConfig::without_accuracy()),
        ("no redundancy", FilterConfig::without_redundancy()),
    ];
    let methods: Vec<String> = variants.iter().map(|(n, _)| n.to_string()).collect();

    let mut results: Vec<Vec<Outcome>> = vec![Vec::new(); variants.len()];
    for &name in &cfg.datasets {
        let t0 = Instant::now();
        let dataset = cfg.load(name, 0);
        for (vi, (_, filters)) in variants.iter().enumerate() {
            let outcome = run_seeds(cfg.seeds, |s| {
                let mut config = DataSculptConfig::sc(s);
                config.filters = *filters;
                run_datasculpt(&dataset, config, model, s)
            });
            results[vi].push(outcome);
        }
        eprintln!("[table5] {name} done in {:.1?}", t0.elapsed());
    }

    let grid = Grid {
        methods,
        datasets: cfg.datasets.clone(),
        results,
    };
    println!(
        "{}",
        grid.render(&format!(
            "Table 5: Ablation study using different LF filters (DataSculpt-SC, scale={}, seeds={})",
            cfg.scale, cfg.seeds
        ))
    );
    grid.write_csv("results/table5.csv").expect("write results/table5.csv");
    eprintln!("[table5] wrote results/table5.csv");
}
