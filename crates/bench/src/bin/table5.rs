//! Regenerates **Table 5**: the LF-filter ablation — DataSculpt-SC with all
//! filters, without the accuracy filter, and without the redundancy filter
//! (§3.5).
//!
//! ```text
//! cargo run -p datasculpt-bench --release --bin table5
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::prelude::*;
use datasculpt_bench::*;

fn main() {
    let cfg = HarnessConfig::from_env();
    let model = ModelId::Gpt35Turbo;
    let variants: [(&str, FilterConfig); 3] = [
        ("all", FilterConfig::all()),
        ("no accuracy", FilterConfig::without_accuracy()),
        ("no redundancy", FilterConfig::without_redundancy()),
    ];
    let methods = variants
        .iter()
        .map(|&(label, filters)| {
            MethodSpec::seeded(label, move |d: &TextDataset, s| {
                let mut config = DataSculptConfig::sc(s);
                config.filters = filters;
                run_datasculpt(d, config, model, s)
            })
        })
        .collect();
    run_matrix(
        "table5",
        &format!(
            "Table 5: Ablation study using different LF filters (DataSculpt-SC, scale={}, seeds={})",
            cfg.scale, cfg.seeds
        ),
        methods,
        &cfg,
    );
}
