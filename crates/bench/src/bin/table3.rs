//! Regenerates **Table 3**: the LLM ablation — DataSculpt-SC run with
//! GPT-3.5, GPT-4, and the three Llama-2-CHAT sizes.
//!
//! ```text
//! cargo run -p datasculpt-bench --release --bin table3
//! ```

use datasculpt::prelude::*;
use datasculpt_bench::*;
use std::time::Instant;

fn main() {
    let cfg = HarnessConfig::from_env();
    let models = ModelId::ALL;
    let methods: Vec<String> = models.iter().map(|m| m.label().to_string()).collect();

    let mut results: Vec<Vec<Outcome>> = vec![Vec::new(); models.len()];
    for &name in &cfg.datasets {
        let t0 = Instant::now();
        let dataset = cfg.load(name, 0);
        for (mi, &model) in models.iter().enumerate() {
            let outcome = run_seeds(cfg.seeds, |s| {
                run_datasculpt(&dataset, DataSculptConfig::sc(s), model, s)
            });
            results[mi].push(outcome);
        }
        eprintln!("[table3] {name} done in {:.1?}", t0.elapsed());
    }

    let grid = Grid {
        methods,
        datasets: cfg.datasets.clone(),
        results,
    };
    println!(
        "{}",
        grid.render(&format!(
            "Table 3: Ablation study using different LLMs (DataSculpt-SC, scale={}, seeds={})",
            cfg.scale, cfg.seeds
        ))
    );
    grid.write_csv("results/table3.csv").expect("write results/table3.csv");
    eprintln!("[table3] wrote results/table3.csv");
}
