//! Regenerates **Table 3**: the LLM ablation — DataSculpt-SC run with
//! GPT-3.5, GPT-4, and the three Llama-2-CHAT sizes.
//!
//! ```text
//! cargo run -p datasculpt-bench --release --bin table3
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::prelude::*;
use datasculpt_bench::*;

fn main() {
    let cfg = HarnessConfig::from_env();
    let methods = ModelId::ALL
        .iter()
        .map(|&model| {
            MethodSpec::seeded(model.label(), move |d: &TextDataset, s| {
                run_datasculpt(d, DataSculptConfig::sc(s), model, s)
            })
        })
        .collect();
    run_matrix(
        "table3",
        &format!(
            "Table 3: Ablation study using different LLMs (DataSculpt-SC, scale={}, seeds={})",
            cfg.scale, cfg.seeds
        ),
        methods,
        &cfg,
    );
}
