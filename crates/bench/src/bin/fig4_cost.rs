//! Regenerates **Figure 4**: API cost (USD) for synthesizing LFs, per
//! method per dataset (log scale), at the paper's gpt-3.5-turbo-0613 rates
//! ($1.50/M input, $2.00/M output — footnote 2).
//!
//! ```text
//! cargo run -p datasculpt-bench --release --bin fig4_cost
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::prelude::*;
use datasculpt_bench::*;

fn main() {
    let cfg = HarnessConfig::from_env();
    let model = ModelId::Gpt35Turbo;
    let spec = FigureSpec {
        tag: "fig4",
        csv_stem: "fig4_cost",
        title: format!(
            "Figure 4: API cost for synthesizing LFs (log scale, scale={}, seeds={}, {} rates)",
            cfg.scale,
            cfg.seeds,
            model.api_name()
        ),
        value: |o| o.cost_usd,
        cell: |v| format!("${v:>11.4}"),
        // Bars on a micro-dollar log scale so $0.01 and $100 both render.
        bar_scale: 1e6,
        csv_cell: |v| format!("{v:.6}"),
        total_cell: |v| format!("${v:>12.4}"),
    };
    let ledgers = run_usage_figure(&spec, &cfg, model);

    // Exact per-model breakdown straight from the merged ledgers: integer
    // nano-USD until the shared display boundary, no recomputed totals.
    println!("\nexact cost by model (summed over {} seeds):", cfg.seeds);
    for (method, ledger) in USAGE_METHODS.iter().zip(&ledgers) {
        for (m, usage) in ledger.per_model() {
            let cost = PricingTable::cost_nanousd(m, usage.prompt_tokens, usage.completion_tokens);
            println!(
                "  {method:<16} {:<22} {:>12}",
                m.api_name(),
                datasculpt::obs::cost::format_usd(cost)
            );
        }
    }

    let prompted = ledgers.get(1).map_or(0, |l| l.total_cost_nanousd());
    let sculpt_base = ledgers.get(2).map_or(0, |l| l.total_cost_nanousd());
    if sculpt_base > 0 {
        println!(
            "\nPromptedLF / DataSculpt-Base cost ratio: {:.0}x",
            datasculpt::obs::cost::nanousd_to_usd(prompted)
                / datasculpt::obs::cost::nanousd_to_usd(sculpt_base)
        );
    }
}
