//! Regenerates **Figure 4**: API cost (USD) for synthesizing LFs, per
//! method per dataset (log scale), at the paper's gpt-3.5-turbo-0613 rates
//! ($1.50/M input, $2.00/M output — footnote 2).
//!
//! ```text
//! cargo run -p datasculpt-bench --release --bin fig4_cost
//! ```

use datasculpt::prelude::*;
use datasculpt_bench::*;
use std::io::Write as _;

fn main() {
    let cfg = HarnessConfig::from_env();
    let model = ModelId::Gpt35Turbo;

    // cost[method][dataset] in USD
    let mut cost: Vec<Vec<f64>> = vec![Vec::new(); USAGE_METHODS.len()];
    for &name in &cfg.datasets {
        let dataset = cfg.load(name, 0);
        for (mi, method) in USAGE_METHODS.iter().enumerate() {
            let o = run_seeds(cfg.seeds, |s| generation_usage(&dataset, method, model, s));
            cost[mi].push(o.cost_usd);
        }
        eprintln!("[fig4] {name} done");
    }

    // Bars on a micro-dollar log scale so $0.01 and $100 both render.
    let max = cost.iter().flatten().cloned().fold(0.0f64, f64::max) * 1e6;
    println!(
        "Figure 4: API cost for synthesizing LFs (log scale, scale={}, seeds={}, {} rates)\n",
        cfg.scale,
        cfg.seeds,
        model.api_name()
    );
    for (di, name) in cfg.datasets.iter().enumerate() {
        println!("{name}:");
        for (mi, method) in USAGE_METHODS.iter().enumerate() {
            let v = cost[mi][di];
            println!(
                "  {method:<16} ${:>11.4} |{}",
                v,
                log_bar(v * 1e6, max, 48)
            );
        }
    }
    let totals: Vec<f64> = USAGE_METHODS
        .iter()
        .enumerate()
        .map(|(mi, _)| cost[mi].iter().sum())
        .collect();
    println!("\ntotals across datasets:");
    for (method, total) in USAGE_METHODS.iter().zip(&totals) {
        println!("  {method:<16} ${total:>12.4}");
    }
    let sculpt_base = totals[2];
    let prompted = totals[1];
    if sculpt_base > 0.0 {
        println!(
            "\nPromptedLF / DataSculpt-Base cost ratio: {:.0}x",
            prompted / sculpt_base
        );
    }

    std::fs::create_dir_all("results").expect("results dir");
    let mut f = std::fs::File::create("results/fig4_cost.csv").expect("csv file");
    writeln!(
        f,
        "method,{},total",
        cfg.datasets
            .iter()
            .map(|d| d.as_str())
            .collect::<Vec<_>>()
            .join(",")
    )
    .expect("csv header");
    for (mi, method) in USAGE_METHODS.iter().enumerate() {
        writeln!(
            f,
            "{method},{},{:.6}",
            cost[mi]
                .iter()
                .map(|v| format!("{v:.6}"))
                .collect::<Vec<_>>()
                .join(","),
            totals[mi]
        )
        .expect("csv row");
    }
    eprintln!("[fig4] wrote results/fig4_cost.csv");
}
