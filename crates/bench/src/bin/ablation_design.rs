//! Internal design-choice ablations (not a paper table).
//!
//! DESIGN.md documents several engineering choices this reproduction had to
//! make where the paper's substrate (MeTaL, BERT, scikit-learn) was
//! replaced. This bench quantifies each choice by evaluating the *same*
//! DataSculpt-SC LF set under variants of the evaluation stack:
//!
//! * label model: MeTaL-style EM (default) vs. majority vote vs. triplet,
//!   and the EM stability guards (accuracy-tilt prior, damped cross-LF
//!   abstain evidence, damped updates) turned off one at a time;
//! * end model: hard vs. soft targets, balanced vs. plain sample weights,
//!   unigram vs. bigram features.
//!
//! ```text
//! DS_SCALE=0.25 cargo run -p datasculpt-bench --release --bin ablation_design
//! ```

use datasculpt::core::eval::evaluate_matrix;
use datasculpt::prelude::*;
use datasculpt_bench::HarnessConfig;
use std::io::Write as _;

fn variants() -> Vec<(&'static str, EvalConfig)> {
    let base = EvalConfig::default();
    let metal = |f: fn(&mut MetalConfig)| {
        let mut mc = MetalConfig::default();
        f(&mut mc);
        EvalConfig {
            label_model: LabelModelKind::Metal(mc),
            ..base
        }
    };
    vec![
        ("default (EM, guards on)", base),
        (
            "EM: no accuracy-tilt prior",
            metal(|m| m.accuracy_tilt = 1.0),
        ),
        (
            "EM: full abstain evidence",
            metal(|m| m.abstain_evidence_scale = 1.0),
        ),
        ("EM: undamped updates", metal(|m| m.update_damping = 1.0)),
        (
            "label model: majority vote",
            EvalConfig {
                label_model: LabelModelKind::Majority,
                ..base
            },
        ),
        (
            "label model: triplet",
            EvalConfig {
                label_model: LabelModelKind::Triplet,
                ..base
            },
        ),
        (
            "end model: soft targets",
            EvalConfig {
                hard_targets: false,
                ..base
            },
        ),
        (
            "end model: unbalanced weights",
            EvalConfig {
                balanced_weights: false,
                ..base
            },
        ),
        (
            "features: bigrams",
            EvalConfig {
                feature_order: 2,
                ..base
            },
        ),
        (
            "end model: MLP (64 hidden)",
            EvalConfig {
                end_model: EndModelKind::Mlp { hidden: 64 },
                ..base
            },
        ),
    ]
}

fn main() {
    let cfg = HarnessConfig::from_env();
    let datasets = [DatasetName::Youtube, DatasetName::Sms, DatasetName::Imdb];
    let names = variants();

    // results[variant][dataset]
    let mut results: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    for &name in &datasets {
        let dataset = cfg.load(name, 0);
        // One fixed LF set per dataset so only the evaluation stack varies.
        let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, dataset.generative.clone(), 0);
        let run = DataSculpt::new(&dataset, DataSculptConfig::sc(0)).run(&mut llm);
        let matrix = run.lf_set.train_matrix();
        for (vi, (_, eval_cfg)) in names.iter().enumerate() {
            let eval = evaluate_matrix(&dataset, &matrix, eval_cfg);
            results[vi].push(eval.end_metric);
        }
        eprintln!("[ablation_design] {name} done");
    }

    println!(
        "Design-choice ablations: end-model metric under evaluation-stack variants (scale={})\n",
        cfg.scale
    );
    print!("{:<34}", "variant");
    for d in &datasets {
        print!("{:>10}", d.as_str());
    }
    println!();
    for (vi, (label, _)) in names.iter().enumerate() {
        print!("{label:<34}");
        for v in &results[vi] {
            print!("{v:>10.3}");
        }
        println!();
    }

    std::fs::create_dir_all("results").expect("results dir");
    let mut f = std::fs::File::create("results/ablation_design.csv").expect("csv");
    writeln!(
        f,
        "variant,{}",
        datasets
            .iter()
            .map(|d| d.as_str())
            .collect::<Vec<_>>()
            .join(",")
    )
    .expect("header");
    for (vi, (label, _)) in names.iter().enumerate() {
        writeln!(
            f,
            "{label},{}",
            results[vi]
                .iter()
                .map(|v| format!("{v:.4}"))
                .collect::<Vec<_>>()
                .join(",")
        )
        .expect("row");
    }
    eprintln!("[ablation_design] wrote results/ablation_design.csv");
}
