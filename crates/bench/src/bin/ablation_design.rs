//! Internal design-choice ablations (not a paper table).
//!
//! DESIGN.md documents several engineering choices this reproduction had to
//! make where the paper's substrate (MeTaL, BERT, scikit-learn) was
//! replaced. This bench quantifies each choice by evaluating the *same*
//! DataSculpt-SC LF set under variants of the evaluation stack (see
//! [`design_variants`] for the list).
//!
//! ```text
//! DS_SCALE=0.25 cargo run -p datasculpt-bench --release --bin ablation_design
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::core::eval::evaluate_matrix;
use datasculpt::prelude::*;
use datasculpt_bench::*;

fn main() {
    let cfg = HarnessConfig::from_env();
    let datasets = [DatasetName::Youtube, DatasetName::Sms, DatasetName::Imdb];
    let variants = design_variants();
    let rows: Vec<String> = variants.iter().map(|(n, _)| n.to_string()).collect();
    run_scalar_matrix(
        "ablation_design",
        &format!(
            "Design-choice ablations: end-model metric under evaluation-stack variants (scale={})",
            cfg.scale
        ),
        &rows,
        &datasets,
        &cfg,
        |dataset| {
            // One fixed LF set per dataset so only the evaluation stack varies.
            let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, dataset.generative.clone(), 0);
            let run = DataSculpt::new(dataset, DataSculptConfig::sc(0))
                .run(&mut llm)
                .expect("the simulated model does not fail");
            run.lf_set.train_matrix().clone()
        },
        |matrix, dataset, vi| match variants.get(vi) {
            Some((_, cfg)) => evaluate_matrix(dataset, matrix, cfg).end_metric,
            None => 0.0,
        },
    );
}
