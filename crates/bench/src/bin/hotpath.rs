//! Hot-path kernel timing report: `BENCH_hotpath.json`.
//!
//! Times the columnar kernels (gram-index build, indexed LF apply, MeTaL
//! E-step, hashed TF-IDF) next to their pre-refactor row-major baselines
//! and writes the `datasculpt-bench-hotpath/v1` JSON document (schema:
//! `docs/perf.md`). Run through `scripts/bench.sh`, which also validates
//! the output; `--check` is the one-iteration smoke mode wired into
//! `scripts/check.sh`.
//!
//! Flags:
//!
//! * `--check` — quick mode: small dataset slice, one iteration per
//!   kernel (schema smoke test, timings meaningless).
//! * `--out <path>` — output path (default `BENCH_hotpath.json`).
//! * `--dataset <name>` — dataset (default `agnews`, the largest).
//! * `--scale <f>` — dataset scale factor (default 1.0).
//! * `--iters <n>` — timed iterations per kernel (default 5).

// Experiment driver, not a library: aborting on a malformed spec is correct.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::prelude::DatasetName;
use datasculpt_bench::hotpath::run_report;

fn main() {
    let mut out = "BENCH_hotpath.json".to_string();
    let mut dataset = DatasetName::Agnews;
    let mut scale = 1.0f64;
    let mut iters = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {
                // One short iteration per kernel: exercises every kernel
                // and the JSON schema without a multi-minute timing run.
                scale = 0.05;
                iters = 1;
            }
            "--out" => out = args.next().expect("--out needs a path"),
            "--dataset" => {
                let name = args.next().expect("--dataset needs a name");
                dataset =
                    DatasetName::parse(&name).unwrap_or_else(|| panic!("unknown dataset {name}"));
            }
            "--scale" => {
                scale = args
                    .next()
                    .expect("--scale needs a value")
                    .parse()
                    .expect("--scale must be a float");
            }
            "--iters" => {
                iters = args
                    .next()
                    .expect("--iters needs a value")
                    .parse()
                    .expect("--iters must be an integer");
            }
            other => panic!("unknown flag {other}"),
        }
    }

    eprintln!(
        "[hotpath] dataset={} scale={scale} iters={iters}",
        dataset.as_str()
    );
    let report = run_report(dataset, scale, iters);
    for k in &report.kernels {
        eprintln!(
            "[hotpath] {:<32} {:>12} ns/op (median of {})",
            k.name, k.median_ns_per_op, k.iters
        );
    }
    for (columnar, baseline) in [
        ("lf-apply", "lf-apply-rowscan-baseline"),
        ("metal-e-step", "metal-e-step-rowmajor-baseline"),
    ] {
        let c = report.median_of(columnar).expect("required kernel");
        let b = report.median_of(baseline).expect("required kernel");
        eprintln!(
            "[hotpath] {columnar}: {:.2}x vs row-major baseline",
            b as f64 / c as f64
        );
    }
    eprintln!("[hotpath] peak RSS {} kB", report.peak_rss_kb);
    std::fs::write(&out, report.to_json()).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("[hotpath] wrote {out}");
}
