//! Observability-overhead timing report: `BENCH_obs.json`.
//!
//! Times a schema-faithful synthetic event stream through the real
//! observer stacks (noop floor, tracer+metrics, tracer+JSONL, full
//! shared stack) and writes the `datasculpt-bench-obs/v1` JSON document.
//! Run through `scripts/bench.sh obs`, which also validates the output;
//! `--check` is the one-iteration smoke mode wired into
//! `scripts/check.sh`.
//!
//! Flags:
//!
//! * `--check` — quick mode: tiny workload, one iteration per stack
//!   (schema smoke test, timings meaningless).
//! * `--out <path>` — output path (default `BENCH_obs.json`).
//! * `--blocks <n>` — iteration blocks per workload (default 20000,
//!   i.e. ~120k events per timed invocation).
//! * `--iters <n>` — timed iterations per stack (default 5).

// Experiment driver, not a library: aborting on a malformed spec is correct.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt_bench::obsbench::run_report;

fn main() {
    let mut out = "BENCH_obs.json".to_string();
    let mut blocks = 20_000u64;
    let mut iters = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {
                blocks = 200;
                iters = 1;
            }
            "--out" => out = args.next().expect("--out needs a path"),
            "--blocks" => {
                blocks = args
                    .next()
                    .expect("--blocks needs a value")
                    .parse()
                    .expect("--blocks must be an integer");
            }
            "--iters" => {
                iters = args
                    .next()
                    .expect("--iters needs a value")
                    .parse()
                    .expect("--iters must be an integer");
            }
            other => panic!("unknown flag {other}"),
        }
    }

    eprintln!("[obsbench] blocks={blocks} iters={iters}");
    let report = run_report(blocks, iters);
    let noop = report.ns_per_event("noop").unwrap_or(0);
    for k in &report.kernels {
        let per_event = report.ns_per_event(&k.name).unwrap_or(0);
        eprintln!(
            "[obsbench] {:<16} {:>12} ns/op  {:>6} ns/event  (+{} ns/event vs noop, median of {})",
            k.name,
            k.median_ns_per_op,
            per_event,
            per_event.saturating_sub(noop),
            k.iters
        );
    }
    eprintln!("[obsbench] peak RSS {} kB", report.peak_rss_kb);
    std::fs::write(&out, report.to_json()).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("[obsbench] wrote {out}");
}
