//! Regenerates **Table 2**: statistics of synthesized LFs and end-model
//! accuracy for WRENCH, ScriptoriumWS, PromptedLF, and the four DataSculpt
//! variants, on all six datasets.
//!
//! ```text
//! cargo run -p datasculpt-bench --release --bin table2
//! DS_SCALE=0.1 DS_SEEDS=2 cargo run -p datasculpt-bench --release --bin table2
//! ```

use datasculpt::prelude::*;
use datasculpt_bench::*;
use std::time::Instant;

fn main() {
    let cfg = HarnessConfig::from_env();
    let model = ModelId::Gpt35Turbo; // §4.1 default
    let methods: Vec<String> = [
        "WRENCH",
        "ScriptoriumWS",
        "PromptedLF",
        "DataSculpt-Base",
        "DataSculpt-CoT",
        "DataSculpt-SC",
        "DataSculpt-KATE",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let mut results: Vec<Vec<Outcome>> = vec![Vec::new(); methods.len()];
    for &name in &cfg.datasets {
        let t0 = Instant::now();
        let dataset = cfg.load(name, 0);
        for (mi, method) in methods.iter().enumerate() {
            let outcome = match method.as_str() {
                // WRENCH expert LFs are deterministic given the corpus.
                "WRENCH" => run_wrench(&dataset),
                "ScriptoriumWS" => {
                    run_seeds(cfg.seeds, |s| run_scriptorium(&dataset, model, s))
                }
                "PromptedLF" => run_seeds(cfg.seeds, |s| run_promptedlf(&dataset, model, s)),
                "DataSculpt-Base" => run_seeds(cfg.seeds, |s| {
                    run_datasculpt(&dataset, DataSculptConfig::base(s), model, s)
                }),
                "DataSculpt-CoT" => run_seeds(cfg.seeds, |s| {
                    run_datasculpt(&dataset, DataSculptConfig::cot(s), model, s)
                }),
                "DataSculpt-SC" => run_seeds(cfg.seeds, |s| {
                    run_datasculpt(&dataset, DataSculptConfig::sc(s), model, s)
                }),
                "DataSculpt-KATE" => run_seeds(cfg.seeds, |s| {
                    run_datasculpt(&dataset, DataSculptConfig::kate(s), model, s)
                }),
                other => unreachable!("unknown method {other}"),
            };
            results[mi].push(outcome);
        }
        eprintln!("[table2] {name} done in {:.1?}", t0.elapsed());
    }

    let grid = Grid {
        methods,
        datasets: cfg.datasets.clone(),
        results,
    };
    println!(
        "{}",
        grid.render(&format!(
            "Table 2: Statistics of synthesized LFs and end model accuracy \
             (scale={}, seeds={}, model={})",
            cfg.scale,
            cfg.seeds,
            model.label()
        ))
    );
    grid.write_csv("results/table2.csv").expect("write results/table2.csv");
    eprintln!("[table2] wrote results/table2.csv");
}
