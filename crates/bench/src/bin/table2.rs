//! Regenerates **Table 2**: statistics of synthesized LFs and end-model
//! accuracy for WRENCH, ScriptoriumWS, PromptedLF, and the four DataSculpt
//! variants, on all six datasets.
//!
//! ```text
//! cargo run -p datasculpt-bench --release --bin table2
//! DS_SCALE=0.1 DS_SEEDS=2 cargo run -p datasculpt-bench --release --bin table2
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::prelude::*;
use datasculpt_bench::*;

fn main() {
    let cfg = HarnessConfig::from_env();
    let model = ModelId::Gpt35Turbo; // §4.1 default
    let sculpt = |config: fn(u64) -> DataSculptConfig| {
        move |d: &TextDataset, s: u64| run_datasculpt(d, config(s), model, s)
    };
    let methods = vec![
        // WRENCH expert LFs are deterministic given the corpus.
        MethodSpec::deterministic("WRENCH", run_wrench),
        MethodSpec::seeded("ScriptoriumWS", |d, s| run_scriptorium(d, model, s)),
        MethodSpec::seeded("PromptedLF", |d, s| run_promptedlf(d, model, s)),
        MethodSpec::seeded("DataSculpt-Base", sculpt(DataSculptConfig::base)),
        MethodSpec::seeded("DataSculpt-CoT", sculpt(DataSculptConfig::cot)),
        MethodSpec::seeded("DataSculpt-SC", sculpt(DataSculptConfig::sc)),
        MethodSpec::seeded("DataSculpt-KATE", sculpt(DataSculptConfig::kate)),
    ];
    run_matrix(
        "table2",
        &format!(
            "Table 2: Statistics of synthesized LFs and end model accuracy \
             (scale={}, seeds={}, model={})",
            cfg.scale,
            cfg.seeds,
            model.label()
        ),
        methods,
        &cfg,
    );
}
