//! Regenerates **Table 4**: the query-instance sampler ablation —
//! DataSculpt-SC with random, uncertainty, and SEU sampling (§3.4).
//!
//! ```text
//! cargo run -p datasculpt-bench --release --bin table4
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::prelude::*;
use datasculpt_bench::*;

fn main() {
    let cfg = HarnessConfig::from_env();
    let model = ModelId::Gpt35Turbo;
    // core-set is an extension row (not in the paper's Table 4).
    let samplers = [
        SamplerKind::Random,
        SamplerKind::Uncertain,
        SamplerKind::Seu,
        SamplerKind::CoreSet,
    ];
    let methods = samplers
        .iter()
        .map(|&sampler| {
            MethodSpec::seeded(sampler.label(), move |d: &TextDataset, s| {
                let mut config = DataSculptConfig::sc(s);
                config.sampler = sampler;
                run_datasculpt(d, config, model, s)
            })
        })
        .collect();
    run_matrix(
        "table4",
        &format!(
            "Table 4: Ablation study using different samplers (DataSculpt-SC, scale={}, seeds={})",
            cfg.scale, cfg.seeds
        ),
        methods,
        &cfg,
    );
}
