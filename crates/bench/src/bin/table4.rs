//! Regenerates **Table 4**: the query-instance sampler ablation —
//! DataSculpt-SC with random, uncertainty, and SEU sampling (§3.4).
//!
//! ```text
//! cargo run -p datasculpt-bench --release --bin table4
//! ```

use datasculpt::prelude::*;
use datasculpt_bench::*;
use std::time::Instant;

fn main() {
    let cfg = HarnessConfig::from_env();
    let model = ModelId::Gpt35Turbo;
    // core-set is an extension row (not in the paper's Table 4).
    let samplers = [
        SamplerKind::Random,
        SamplerKind::Uncertain,
        SamplerKind::Seu,
        SamplerKind::CoreSet,
    ];
    let methods: Vec<String> = samplers.iter().map(|s| s.label().to_string()).collect();

    let mut results: Vec<Vec<Outcome>> = vec![Vec::new(); samplers.len()];
    for &name in &cfg.datasets {
        let t0 = Instant::now();
        let dataset = cfg.load(name, 0);
        for (si, &sampler) in samplers.iter().enumerate() {
            let outcome = run_seeds(cfg.seeds, |s| {
                let mut config = DataSculptConfig::sc(s);
                config.sampler = sampler;
                run_datasculpt(&dataset, config, model, s)
            });
            results[si].push(outcome);
        }
        eprintln!("[table4] {name} done in {:.1?}", t0.elapsed());
    }

    let grid = Grid {
        methods,
        datasets: cfg.datasets.clone(),
        results,
    };
    println!(
        "{}",
        grid.render(&format!(
            "Table 4: Ablation study using different samplers (DataSculpt-SC, scale={}, seeds={})",
            cfg.scale, cfg.seeds
        ))
    );
    grid.write_csv("results/table4.csv").expect("write results/table4.csv");
    eprintln!("[table4] wrote results/table4.csv");
}
