//! Multi-tenant serve traffic simulation: `BENCH_serve.json`.
//!
//! Submits one Zipfian-sized labeling job per simulated tenant (mixed
//! zero/shoestring/ample budgets) to an in-process [`Service`] over the
//! scripted simulated backend, drains it round by round, and writes the
//! `datasculpt-bench-serve/v1` JSON document with throughput, round
//! latency percentiles, and the budget-violation audit. Run through
//! `scripts/bench.sh serve`, which also validates the output.
//!
//! Flags:
//!
//! * `--check` — quick mode: a 48-tenant fleet (schema smoke test,
//!   timings meaningless).
//! * `--out <path>` — output path (default `BENCH_serve.json`).
//! * `--tenants <n>` — fleet size (default 2000).
//! * `--slots <n>` — concurrent execution slots (default 8).
//! * `--seed <n>` — workload seed (default 1).

// Experiment driver, not a library: aborting on a malformed spec is correct.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt_bench::servebench::run_report;

fn main() {
    let mut out = "BENCH_serve.json".to_string();
    let mut tenants = 2_000usize;
    let mut slots = 8usize;
    let mut seed = 1u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => tenants = 48,
            "--out" => out = args.next().expect("--out needs a path"),
            "--tenants" => {
                tenants = args
                    .next()
                    .expect("--tenants needs a value")
                    .parse()
                    .expect("--tenants must be an integer");
            }
            "--slots" => {
                slots = args
                    .next()
                    .expect("--slots needs a value")
                    .parse()
                    .expect("--slots must be an integer");
            }
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer");
            }
            other => panic!("unknown flag {other}"),
        }
    }

    eprintln!("[servebench] tenants={tenants} slots={slots} seed={seed}");
    let report = run_report(tenants, slots, seed);
    eprintln!(
        "[servebench] {} completed, {} rejected, {} paused over {} rounds",
        report.completed, report.rejected, report.paused, report.rounds
    );
    eprintln!(
        "[servebench] throughput {}.{:03} jobs/s, round p50 {} ns, p95 {} ns",
        report.jobs_per_sec_milli / 1_000,
        report.jobs_per_sec_milli % 1_000,
        report.round_p50_ns,
        report.round_p95_ns
    );
    eprintln!(
        "[servebench] budget audit: {} overdrawn tenant(s), worst {} nano-USD, fleet total {} nano-USD",
        report.budget_violation_tenants, report.max_overdraft_nanousd, report.total_cost_nanousd
    );
    eprintln!("[servebench] peak RSS {} kB", report.peak_rss_kb);
    std::fs::write(&out, report.to_json()).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("[servebench] wrote {out}");
}
