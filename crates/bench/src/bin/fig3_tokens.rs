//! Regenerates **Figure 3**: token usage for synthesizing LFs, per method
//! per dataset (log scale). WRENCH is omitted (manual LFs consume no
//! tokens), matching the figure.
//!
//! ```text
//! cargo run -p datasculpt-bench --release --bin fig3_tokens
//! ```

use datasculpt::prelude::*;
use datasculpt_bench::*;
use std::io::Write as _;

fn main() {
    let cfg = HarnessConfig::from_env();
    let model = ModelId::Gpt35Turbo;

    // tokens[method][dataset]
    let mut tokens: Vec<Vec<f64>> = vec![Vec::new(); USAGE_METHODS.len()];
    for &name in &cfg.datasets {
        let dataset = cfg.load(name, 0);
        for (mi, method) in USAGE_METHODS.iter().enumerate() {
            let o = run_seeds(cfg.seeds, |s| generation_usage(&dataset, method, model, s));
            tokens[mi].push(o.tokens());
        }
        eprintln!("[fig3] {name} done");
    }

    let max = tokens
        .iter()
        .flatten()
        .cloned()
        .fold(0.0f64, f64::max);
    println!(
        "Figure 3: Token usage for synthesizing LFs (log scale, scale={}, seeds={})\n",
        cfg.scale, cfg.seeds
    );
    for (di, name) in cfg.datasets.iter().enumerate() {
        println!("{name}:");
        for (mi, method) in USAGE_METHODS.iter().enumerate() {
            let v = tokens[mi][di];
            println!("  {method:<16} {:>12.0} |{}", v, log_bar(v, max, 48));
        }
    }
    let totals: Vec<f64> = USAGE_METHODS
        .iter()
        .enumerate()
        .map(|(mi, _)| tokens[mi].iter().sum())
        .collect();
    println!("\ntotals across datasets:");
    for (method, total) in USAGE_METHODS.iter().zip(&totals) {
        println!("  {method:<16} {total:>14.0} tokens");
    }

    std::fs::create_dir_all("results").expect("results dir");
    let mut f = std::fs::File::create("results/fig3_tokens.csv").expect("csv file");
    writeln!(
        f,
        "method,{},total",
        cfg.datasets
            .iter()
            .map(|d| d.as_str())
            .collect::<Vec<_>>()
            .join(",")
    )
    .expect("csv header");
    for (mi, method) in USAGE_METHODS.iter().enumerate() {
        writeln!(
            f,
            "{method},{},{:.0}",
            tokens[mi]
                .iter()
                .map(|v| format!("{v:.0}"))
                .collect::<Vec<_>>()
                .join(","),
            totals[mi]
        )
        .expect("csv row");
    }
    eprintln!("[fig3] wrote results/fig3_tokens.csv");
}
