//! Regenerates **Figure 3**: token usage for synthesizing LFs, per method
//! per dataset (log scale). WRENCH is omitted (manual LFs consume no
//! tokens), matching the figure.
//!
//! ```text
//! cargo run -p datasculpt-bench --release --bin fig3_tokens
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::prelude::*;
use datasculpt_bench::*;

fn main() {
    let cfg = HarnessConfig::from_env();
    let model = ModelId::Gpt35Turbo;
    let spec = FigureSpec {
        tag: "fig3",
        csv_stem: "fig3_tokens",
        title: format!(
            "Figure 3: Token usage for synthesizing LFs (log scale, scale={}, seeds={})",
            cfg.scale, cfg.seeds
        ),
        value: Outcome::tokens,
        cell: |v| format!("{v:>12.0}"),
        bar_scale: 1.0,
        csv_cell: |v| format!("{v:.0}"),
        total_cell: |v| format!("{v:>14.0} tokens"),
    };
    run_usage_figure(&spec, &cfg, model);
}
