//! Hot-path kernel benchmarks behind `BENCH_hotpath.json`.
//!
//! The columnar refactor (PR 6) moved the vote matrix to an LF-major
//! layout and the gram index onto an interned-symbol CSR. This module
//! keeps the *pre-refactor* kernels alive as explicit baselines — a
//! row-major MeTaL EM fit ([`RowMajorMetal`], a direct port of the old
//! `posterior_row` code over [`RowMajorMatrix`]) and the per-document
//! token-scan LF apply — and times both sides of each comparison with a
//! median-of-iterations wall-clock harness.
//!
//! Consumers:
//!
//! * `src/bin/hotpath.rs` — emits `BENCH_hotpath.json` (schema:
//!   `docs/perf.md`); `scripts/bench.sh` wraps it and `scripts/check.sh`
//!   runs the one-iteration `--check` mode as a schema smoke test.
//! * `benches/microbench.rs` — criterion comparisons on the same kernels.

use datasculpt::core::index::NgramIndex;
use datasculpt::exec::{shard_ranges, DEFAULT_SHARDS};
use datasculpt::labelmodel::{LabelMatrix, RowMajorMatrix, ABSTAIN};
use datasculpt::prelude::*;
use datasculpt::text::HashedTfIdf;
use std::hint::black_box;

/// EM hyper-parameters mirrored from `MetalConfig::default()` so the
/// baseline fit does the same numerical work as the columnar model.
const SMOOTH_STRENGTH: f64 = 5.0;
const ACCURACY_TILT: f64 = 1.9;
const ABSTAIN_EVIDENCE_SCALE: f64 = 0.25;
const UPDATE_DAMPING: f64 = 0.5;

/// Serial, row-major MeTaL EM fit: a faithful port of the pre-refactor
/// implementation (per-row `posterior_row`, row-major vote-mass scatter).
/// Exists only as a benchmark baseline for the columnar [`MetalModel`].
pub struct RowMajorMetal {
    n_classes: usize,
    theta: Vec<f64>,
    prior: Vec<f64>,
    max_iter: usize,
    tol: f64,
}

impl RowMajorMetal {
    /// A baseline model capped at `max_iter` EM iterations.
    pub fn new(max_iter: usize) -> Self {
        Self {
            n_classes: 0,
            theta: Vec::new(),
            prior: Vec::new(),
            max_iter: max_iter.max(1),
            tol: 1e-5,
        }
    }

    fn posterior_row(
        &self,
        votes: &[i32],
        prior: &[f64],
        base: &[f64],
        ltheta: &[f64],
    ) -> Vec<f64> {
        let c = self.n_classes;
        let mut logp: Vec<f64> = prior
            .iter()
            .zip(base)
            .map(|(&p, &b)| p.max(1e-12).ln() + b)
            .collect();
        for (j, &v) in votes.iter().enumerate() {
            if v == ABSTAIN {
                continue;
            }
            let v = v as usize;
            let off = j * c * (c + 1);
            let lt_j = ltheta.get(off..off + c * (c + 1)).unwrap_or(&[]);
            for (lp, row) in logp.iter_mut().zip(lt_j.chunks_exact(c + 1)) {
                let Some((&labst, active)) = row.split_last() else {
                    continue;
                };
                *lp += active.get(v).copied().unwrap_or(0.0) - ABSTAIN_EVIDENCE_SCALE * labst;
            }
        }
        let m = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut probs: Vec<f64> = logp.iter().map(|lp| (lp - m).exp()).collect();
        let z: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= z;
        }
        probs
    }

    /// The pre-refactor fit loop: row-major E-step, damped M-step.
    pub fn fit(&mut self, matrix: &RowMajorMatrix, n_classes: usize) {
        assert!(n_classes >= 2, "need at least two classes");
        self.n_classes = n_classes;
        let c = n_classes;
        let m = matrix.cols();
        let n = matrix.rows();
        self.theta = vec![0.0; m * c * (c + 1)];
        self.prior = vec![1.0 / c as f64; c];
        if m == 0 || n == 0 {
            return;
        }
        let mut marginal = vec![0.0f64; m * (c + 1)];
        for i in 0..n {
            for (j, &v) in matrix.row(i).iter().enumerate() {
                let v = if v == ABSTAIN { c } else { v as usize };
                if let Some(slot) = marginal.get_mut(j * (c + 1) + v) {
                    *slot += 1.0;
                }
            }
        }
        for e in marginal.iter_mut() {
            *e = (*e + 0.5) / (n as f64 + 0.5 * (c + 1) as f64);
        }
        let mut pseudo = vec![0.0f64; m * c * (c + 1)];
        for j in 0..m {
            for y in 0..c {
                for v in 0..=c {
                    let tilt = if v == y {
                        ACCURACY_TILT
                    } else if v < c {
                        ((c as f64 - ACCURACY_TILT) / (c as f64 - 1.0)).max(0.2)
                    } else {
                        1.0
                    };
                    let mrg = marginal.get(j * (c + 1) + v).copied().unwrap_or(0.0);
                    if let Some(slot) = pseudo.get_mut(j * c * (c + 1) + y * (c + 1) + v) {
                        *slot = SMOOTH_STRENGTH * mrg * tilt;
                    }
                }
            }
        }
        for j in 0..m {
            for y in 0..c {
                let off = j * c * (c + 1) + y * (c + 1);
                let prow = pseudo.get(off..off + c + 1).unwrap_or(&[]);
                let z: f64 = prow.iter().sum();
                if let Some(trow) = self.theta.get_mut(off..off + c + 1) {
                    for (t, p) in trow.iter_mut().zip(prow) {
                        *t = p / z;
                    }
                }
            }
        }
        let fit_prior = self.prior.clone();
        let mut prior_estimate = fit_prior.clone();
        for _ in 0..self.max_iter {
            let ltheta: Vec<f64> = self.theta.iter().map(|t| t.max(1e-12).ln()).collect();
            let base: Vec<f64> = (0..c)
                .map(|y| {
                    ABSTAIN_EVIDENCE_SCALE
                        * (0..m)
                            .map(|j| {
                                ltheta
                                    .get(j * c * (c + 1) + y * (c + 1) + c)
                                    .copied()
                                    .unwrap_or(0.0)
                            })
                            .sum::<f64>()
                })
                .collect();
            // Per-shard partial accumulators merged left-to-right, exactly
            // like the sharded production E-step (same shard count, same
            // merge order), so the accumulated floats are bit-identical.
            let mut vote_mass = vec![0.0f64; m * c * (c + 1)];
            let mut total_mass = vec![0.0f64; c];
            for range in shard_ranges(n, DEFAULT_SHARDS) {
                let mut vm = vec![0.0f64; m * c * (c + 1)];
                let mut tm = vec![0.0f64; c];
                for i in range {
                    let votes = matrix.row(i);
                    let post = self.posterior_row(votes, &fit_prior, &base, &ltheta);
                    for (t, p) in tm.iter_mut().zip(&post) {
                        *t += p;
                    }
                    for (j, &v) in votes.iter().enumerate() {
                        if v == ABSTAIN {
                            continue;
                        }
                        for (y, p) in post.iter().enumerate() {
                            let off = j * c * (c + 1) + y * (c + 1) + v as usize;
                            if let Some(slot) = vm.get_mut(off) {
                                *slot += p;
                            }
                        }
                    }
                }
                for (acc, p) in vote_mass.iter_mut().zip(&vm) {
                    *acc += p;
                }
                for (acc, p) in total_mass.iter_mut().zip(&tm) {
                    *acc += p;
                }
            }
            let mut delta = 0.0f64;
            for j in 0..m {
                for (y, &tmass) in total_mass.iter().enumerate() {
                    let off = j * c * (c + 1) + y * (c + 1);
                    let vrow = vote_mass.get(off..off + c + 1).unwrap_or(&[]);
                    let prow = pseudo.get(off..off + c + 1).unwrap_or(&[]);
                    let votes_v = vrow.get(..c).unwrap_or(&[]);
                    let active_mass: f64 = votes_v.iter().sum();
                    let abst = (tmass - active_mass).max(0.0);
                    let mut counts: Vec<f64> = votes_v
                        .iter()
                        .zip(prow.get(..c).unwrap_or(&[]))
                        .map(|(v, p)| v + p)
                        .collect();
                    counts.push(abst + prow.get(c).copied().unwrap_or(0.0));
                    let z: f64 = counts.iter().sum();
                    if let Some(trow) = self.theta.get_mut(off..off + c + 1) {
                        for (cnt, t) in counts.iter().zip(trow.iter_mut()) {
                            let hat = cnt / z;
                            let new = (1.0 - UPDATE_DAMPING) * *t + UPDATE_DAMPING * hat;
                            delta += (new - *t).abs();
                            *t = new;
                        }
                    }
                }
            }
            let z: f64 = total_mass.iter().sum();
            prior_estimate = total_mass.iter().map(|t| t / z).collect();
            if delta / (m as f64 * c as f64) < self.tol {
                break;
            }
        }
        self.prior = prior_estimate;
    }

    /// The pre-refactor prediction loop: per-row posterior, uniform on
    /// uncovered rows.
    pub fn predict_proba(&self, matrix: &RowMajorMatrix) -> Vec<Vec<f64>> {
        let c = self.n_classes;
        let ltheta: Vec<f64> = self.theta.iter().map(|t| t.max(1e-12).ln()).collect();
        let base: Vec<f64> = (0..c)
            .map(|y| {
                ABSTAIN_EVIDENCE_SCALE
                    * (0..matrix.cols())
                        .map(|j| {
                            ltheta
                                .get(j * c * (c + 1) + y * (c + 1) + c)
                                .copied()
                                .unwrap_or(0.0)
                        })
                        .sum::<f64>()
            })
            .collect();
        (0..matrix.rows())
            .map(|i| {
                let votes = matrix.row(i);
                if votes.iter().all(|&v| v == ABSTAIN) {
                    vec![1.0 / c as f64; c]
                } else {
                    self.posterior_row(votes, &self.prior, &base, &ltheta)
                }
            })
            .collect()
    }

    /// The fitted θ table (for sanity checks against the columnar model).
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }
}

/// Everything a kernel needs, loaded once per report.
pub struct HotpathFixture {
    /// Dataset under measurement.
    pub dataset: TextDataset,
    /// Built gram index over the train split.
    pub index: NgramIndex,
    /// The LFs applied in the apply kernels.
    pub lfs: Vec<KeywordLf>,
    /// Columnar vote matrix of `lfs` over the train split.
    pub matrix: LabelMatrix,
    /// Row-major copy of `matrix` for the baseline kernels.
    pub row_major: RowMajorMatrix,
    /// Number of classes.
    pub n_classes: usize,
}

/// EM iteration cap shared by both E-step kernels.
pub const ESTEP_ITERS: usize = 10;
/// LF pool size for the fixture.
pub const FIXTURE_LFS: usize = 40;

impl HotpathFixture {
    /// Load `name` at `scale` and precompute the shared kernel inputs.
    pub fn load(name: DatasetName, scale: f64) -> Self {
        let dataset = if (scale - 1.0).abs() < 1e-12 {
            name.load(1)
        } else {
            name.load_scaled(1, scale)
        };
        let index = NgramIndex::build(&dataset.train);
        let mut set = LfSet::new(&dataset, FilterConfig::validity_only());
        for lf in wrench_expert_lfs(&dataset, FIXTURE_LFS) {
            set.try_add(lf);
        }
        let lfs = set.lfs().to_vec();
        let matrix = set.train_matrix().clone();
        let columns: Vec<Vec<i32>> = (0..matrix.cols())
            .map(|j| matrix.column(j).to_vec())
            .collect();
        let row_major = RowMajorMatrix::from_columns(&columns, matrix.rows());
        let n_classes = dataset.n_classes();
        Self {
            dataset,
            index,
            lfs,
            matrix,
            row_major,
            n_classes,
        }
    }

    /// Kernel: build the gram index (arena + CSR) from the train split.
    pub fn kernel_index_build(&self) {
        black_box(NgramIndex::build(&self.dataset.train));
    }

    /// Kernel: apply every fixture LF through the interned CSR index.
    pub fn kernel_lf_apply(&self) {
        for lf in &self.lfs {
            black_box(self.index.apply(lf));
        }
    }

    /// Baseline kernel: apply every fixture LF by scanning each
    /// document's tokens (the pre-index row-major path).
    pub fn kernel_lf_apply_rowscan(&self) {
        for lf in &self.lfs {
            black_box(lf.apply(&self.dataset.train));
        }
    }

    /// Kernel: columnar MeTaL EM fit ([`ESTEP_ITERS`] iterations).
    pub fn kernel_metal_estep(&self) {
        let mut lm = MetalModel::new().with_max_iter(ESTEP_ITERS);
        lm.fit(black_box(&self.matrix), self.n_classes);
        black_box(lm);
    }

    /// Baseline kernel: row-major MeTaL EM fit, same iteration cap.
    pub fn kernel_metal_estep_rowmajor(&self) {
        let mut lm = RowMajorMetal::new(ESTEP_ITERS);
        lm.fit(black_box(&self.row_major), self.n_classes);
        black_box(lm);
    }

    /// Kernel: hashed TF-IDF featurization (fit + sparse transform) over
    /// the train split through the arena-backed symbol caches.
    pub fn kernel_tfidf(&self) {
        let mut tfidf = HashedTfIdf::new(32_768, 1);
        tfidf.fit(self.dataset.train.iter().map(|i| i.tokens.as_slice()));
        for inst in self.dataset.train.iter() {
            black_box(tfidf.transform_sparse(&inst.tokens));
        }
    }
}

/// One timed kernel: `iters` medians of wall-clock nanoseconds per op.
#[derive(Debug, Clone)]
pub struct KernelTiming {
    /// Kernel name (stable JSON key — see `docs/perf.md`).
    pub name: String,
    /// Median wall-clock nanoseconds of one kernel invocation.
    pub median_ns_per_op: u128,
    /// Number of timed iterations the median is taken over.
    pub iters: usize,
}

/// Time `f` for `iters` iterations and return the median ns/op. Time is
/// read through the obs [`Clock`] — [`SystemClock`] is the workspace's
/// single wall-clock site (ds-lint `wall-clock` rule).
pub fn time_kernel(name: &str, iters: usize, mut f: impl FnMut()) -> KernelTiming {
    let iters = iters.max(1);
    let mut clock = SystemClock::new();
    let mut samples: Vec<u128> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = clock.now_ns();
        f();
        samples.push(u128::from(clock.now_ns().saturating_sub(t0)));
    }
    samples.sort_unstable();
    KernelTiming {
        name: name.to_string(),
        median_ns_per_op: samples.get(samples.len() / 2).copied().unwrap_or(0),
        iters,
    }
}

/// Peak resident-set size of this process in kB (`VmHWM` from
/// `/proc/self/status`); 0 when the file is unavailable (non-Linux).
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("VmHWM:")
                    .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
            })
        })
        .unwrap_or(0)
}

/// The full hot-path report written as `BENCH_hotpath.json`.
#[derive(Debug)]
pub struct HotpathReport {
    /// Dataset the kernels ran on.
    pub dataset: String,
    /// Scale factor applied to the dataset.
    pub scale: f64,
    /// Train-split rows after scaling.
    pub train_rows: usize,
    /// LFs in the apply/E-step fixtures.
    pub lf_count: usize,
    /// Timed kernels, in run order.
    pub kernels: Vec<KernelTiming>,
    /// Peak RSS of the benchmarking process in kB.
    pub peak_rss_kb: u64,
}

/// Kernel names every report must contain (schema contract).
pub const REQUIRED_KERNELS: [&str; 6] = [
    "index-build",
    "lf-apply",
    "lf-apply-rowscan-baseline",
    "metal-e-step",
    "metal-e-step-rowmajor-baseline",
    "tfidf",
];

/// Run every hot-path kernel on `name` at `scale`, `iters` timed
/// iterations each.
pub fn run_report(name: DatasetName, scale: f64, iters: usize) -> HotpathReport {
    let fx = HotpathFixture::load(name, scale);
    let kernels = vec![
        time_kernel("index-build", iters, || fx.kernel_index_build()),
        time_kernel("lf-apply", iters, || fx.kernel_lf_apply()),
        time_kernel("lf-apply-rowscan-baseline", iters, || {
            fx.kernel_lf_apply_rowscan()
        }),
        time_kernel("metal-e-step", iters, || fx.kernel_metal_estep()),
        time_kernel("metal-e-step-rowmajor-baseline", iters, || {
            fx.kernel_metal_estep_rowmajor()
        }),
        time_kernel("tfidf", iters, || fx.kernel_tfidf()),
    ];
    for required in REQUIRED_KERNELS {
        assert!(
            kernels.iter().any(|k| k.name == required),
            "report is missing required kernel {required}"
        );
    }
    HotpathReport {
        dataset: name.as_str().to_string(),
        scale,
        train_rows: fx.dataset.train.len(),
        lf_count: fx.lfs.len(),
        kernels,
        peak_rss_kb: peak_rss_kb(),
    }
}

impl HotpathReport {
    /// Render the report as the `datasculpt-bench-hotpath/v1` JSON
    /// document (schema: `docs/perf.md`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"datasculpt-bench-hotpath/v1\",\n");
        out.push_str(&format!("  \"dataset\": \"{}\",\n", self.dataset));
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str(&format!("  \"train_rows\": {},\n", self.train_rows));
        out.push_str(&format!("  \"lf_count\": {},\n", self.lf_count));
        out.push_str(&format!("  \"peak_rss_kb\": {},\n", self.peak_rss_kb));
        out.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"median_ns_per_op\": {}, \"iters\": {}}}{}\n",
                k.name,
                k.median_ns_per_op,
                k.iters,
                if i + 1 < self.kernels.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Median ns/op of kernel `name`, if present.
    pub fn median_of(&self, name: &str) -> Option<u128> {
        self.kernels
            .iter()
            .find(|k| k.name == name)
            .map(|k| k.median_ns_per_op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rowmajor_baseline_is_a_faithful_port() {
        let fx = HotpathFixture::load(DatasetName::Youtube, 0.1);
        let mut columnar = MetalModel::new().with_max_iter(ESTEP_ITERS);
        columnar.fit(&fx.matrix, fx.n_classes);
        let mut baseline = RowMajorMetal::new(ESTEP_ITERS);
        baseline.fit(&fx.row_major, fx.n_classes);
        assert!(!baseline.theta().is_empty());
        // Same fit, same posteriors, bit-for-bit: the baseline really is
        // the pre-refactor computation, so the timing comparison is fair.
        let cols = columnar.predict_proba(&fx.matrix);
        let rows = baseline.predict_proba(&fx.row_major);
        assert_eq!(cols.rows(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            for (a, b) in cols.row(i).iter().zip(row) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i} diverged");
            }
        }
    }

    #[test]
    fn report_contains_every_required_kernel() {
        let report = run_report(DatasetName::Youtube, 0.05, 1);
        for k in REQUIRED_KERNELS {
            assert!(report.median_of(k).is_some(), "missing {k}");
        }
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"datasculpt-bench-hotpath/v1\""));
        assert!(json.contains("\"peak_rss_kb\""));
        assert!(json.contains("\"metal-e-step\""));
    }
}
