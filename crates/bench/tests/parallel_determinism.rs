//! Tier-1 determinism contract of the parallel execution engine: a run is
//! digest-identical and ledger-identical to the serial run at every thread
//! count, and the bench grid driver emits the same schema-valid trace
//! whether its cells ran serially or fanned out.
//!
//! Everything lives in ONE `#[test]` because the grid half mutates the
//! `DS_TRACE` process environment; parallel test functions would race on
//! it.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::prelude::*;
use datasculpt_bench::{run_datasculpt, run_matrix, HarnessConfig, MethodSpec};

/// Bitwise equality for the f64 fields of two outcomes (averages must be
/// exactly reproduced, not merely close).
fn assert_outcome_bits(a: &datasculpt_bench::Outcome, b: &datasculpt_bench::Outcome, ctx: &str) {
    assert_eq!(a.n_lfs.to_bits(), b.n_lfs.to_bits(), "n_lfs {ctx}");
    assert_eq!(
        a.lf_acc.map(f64::to_bits),
        b.lf_acc.map(f64::to_bits),
        "lf_acc {ctx}"
    );
    assert_eq!(a.lf_cov.to_bits(), b.lf_cov.to_bits(), "lf_cov {ctx}");
    assert_eq!(
        a.total_cov.to_bits(),
        b.total_cov.to_bits(),
        "total_cov {ctx}"
    );
    assert_eq!(
        a.end_metric.to_bits(),
        b.end_metric.to_bits(),
        "end_metric {ctx}"
    );
    assert_eq!(
        a.prompt_tokens.to_bits(),
        b.prompt_tokens.to_bits(),
        "prompt_tokens {ctx}"
    );
    assert_eq!(
        a.completion_tokens.to_bits(),
        b.completion_tokens.to_bits(),
        "completion_tokens {ctx}"
    );
    assert_eq!(a.cost_usd.to_bits(), b.cost_usd.to_bits(), "cost_usd {ctx}");
}

#[test]
fn parallel_runs_match_serial_at_every_thread_count() {
    // --- One Table-2 cell (DataSculpt-Base on scaled Youtube), run with
    // --- the full parallel stack at 1, 2, and 8 threads.
    let dataset = DatasetName::Youtube.load_scaled(0, 0.3);
    let mut baseline: Option<(u64, u64, TokenUsage, u128)> = None;
    for threads in [1usize, 2, 8] {
        let mut config = DataSculptConfig::base(7);
        config.num_queries = 12;
        config.threads = threads;
        let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, dataset.generative.clone(), 7)
            .with_pool(Pool::new(threads));
        let run = DataSculpt::new(&dataset, config)
            .run(&mut llm)
            .expect("the simulated model does not fail");
        let eval = evaluate_lf_set(
            &dataset,
            &run.lf_set,
            &EvalConfig {
                threads,
                ..EvalConfig::default()
            },
        );
        assert!(eval.end_metric > 0.0);
        let fingerprint = (
            run.digest(),
            run.ledger.calls(),
            run.ledger.total_usage(),
            run.ledger.total_cost_nanousd(),
        );
        match &baseline {
            None => baseline = Some(fingerprint),
            Some(first) => assert_eq!(
                *first, fingerprint,
                "run diverged from serial at {threads} threads"
            ),
        }
    }

    // --- The grid driver: the same cell through `run_matrix`, serial vs
    // --- fanned out, with a JSONL trace. Results must be bit-identical
    // --- and the trace must validate against the schema either way.
    let trace_path = std::env::temp_dir().join("ds_parallel_det_trace.jsonl");
    std::env::set_var("DS_TRACE", &trace_path);
    let mut grids = Vec::new();
    for threads in [1usize, 8] {
        let cfg = HarnessConfig {
            scale: 0.2,
            seeds: 2,
            datasets: vec![DatasetName::Youtube],
            threads,
        };
        let methods = vec![MethodSpec::seeded("DataSculpt-Base", |d, s| {
            let mut config = DataSculptConfig::base(s);
            config.num_queries = 8;
            run_datasculpt(d, config, ModelId::Gpt35Turbo, s)
        })];
        grids.push(run_matrix("parallel_det_test", "parallel", methods, &cfg));

        let text = std::fs::read_to_string(&trace_path).expect("trace written");
        let summary = datasculpt::obs::schema::validate_trace(&text)
            .unwrap_or_else(|e| panic!("invalid trace at {threads} threads: {e}"));
        assert_eq!(summary.stages, vec!["bench"]);
        assert_eq!(
            summary.kinds["stage_begin"], 1,
            "one bench cell span per dataset"
        );
    }
    std::env::remove_var("DS_TRACE");
    assert_outcome_bits(
        &grids[0].results[0][0],
        &grids[1].results[0][0],
        "grid cell serial vs 8 threads",
    );

    // The driver writes result artifacts relative to the test CWD; drop
    // them so test runs leave no litter.
    std::fs::remove_file("results/parallel_det_test.csv").ok();
    std::fs::remove_file("results/parallel_det_test.metrics.json").ok();
    std::fs::remove_dir("results").ok();
    std::fs::remove_file(&trace_path).ok();
}
