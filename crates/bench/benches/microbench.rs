//! Criterion microbenchmarks for the performance-critical components:
//! tokenization, n-gram indexing, LF application, the simulated LLM, the
//! label model, and the sparse end model. These are component benches —
//! the table/figure binaries in `src/bin/` are the experiment harness.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use datasculpt::core::index::NgramIndex;
use datasculpt::core::prompt::{build_messages, request, PromptStyle};
use datasculpt::prelude::*;
use std::hint::black_box;

fn bench_tokenize(c: &mut Criterion) {
    let d = DatasetName::Imdb.load_scaled(1, 0.01);
    let text = d.train.instances[0].text.clone();
    c.bench_function("tokenize/imdb_review", |b| {
        b.iter(|| datasculpt::text::tokenize(black_box(&text)))
    });
}

fn bench_index_build_and_apply(c: &mut Criterion) {
    let d = DatasetName::Youtube.load_scaled(1, 1.0);
    c.bench_function("index/build_youtube_train", |b| {
        b.iter(|| NgramIndex::build(black_box(&d.train)))
    });
    let idx = NgramIndex::build(&d.train);
    let lf = KeywordLf::new("check out", 1);
    c.bench_function("index/apply_one_lf_1586_docs", |b| {
        b.iter(|| idx.apply(black_box(&lf)))
    });
    c.bench_function("lf/apply_scan_1586_docs", |b| {
        b.iter(|| lf.apply(black_box(&d.train)))
    });
}

fn bench_simulated_llm(c: &mut Criterion) {
    let d = DatasetName::Imdb.load_scaled(1, 0.01);
    let messages = build_messages(&d.spec, PromptStyle::CoT, &[], &d.train.instances[0].text);
    let req = request(messages, 0.7, 1);
    let req10 = req.clone().with_n(10);
    c.bench_function("llm/complete_n1", |b| {
        b.iter_batched(
            || SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 1),
            |mut llm| llm.complete(black_box(&req)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("llm/complete_n10_self_consistency", |b| {
        b.iter_batched(
            || SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 1),
            |mut llm| llm.complete(black_box(&req10)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_cache_and_batch(c: &mut Criterion) {
    let d = DatasetName::Imdb.load_scaled(1, 0.01);
    let messages = build_messages(&d.spec, PromptStyle::Base, &[], &d.train.instances[0].text);
    let req = request(messages, 0.7, 1);
    // Cache middleware overhead on a pure hit path: the inner model is
    // never consulted after the first call.
    c.bench_function("llm/cached_hit_lookup", |b| {
        let inner = SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 1);
        let mut llm = CachedModel::new(inner);
        llm.complete(&req).expect("warm the cache");
        b.iter(|| llm.complete(black_box(&req)))
    });
    // Miss path: key construction + inner call + insert, on a fresh cache.
    c.bench_function("llm/cached_miss", |b| {
        b.iter_batched(
            || {
                CachedModel::new(SimulatedLlm::new(
                    ModelId::Gpt35Turbo,
                    d.generative.clone(),
                    1,
                ))
            },
            |mut llm| llm.complete(black_box(&req)),
            BatchSize::SmallInput,
        )
    });
    let requests: Vec<ChatRequest> = d
        .train
        .iter()
        .take(32)
        .map(|inst| {
            let messages = build_messages(&d.spec, PromptStyle::Base, &[], &inst.text);
            request(messages, 0.7, 1)
        })
        .collect();
    c.bench_function("llm/complete_batch_32", |b| {
        b.iter_batched(
            || SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 1),
            |mut llm| llm.complete_batch(black_box(&requests)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_label_model(c: &mut Criterion) {
    let d = DatasetName::Youtube.load_scaled(1, 1.0);
    let mut set = LfSet::new(&d, FilterConfig::validity_only());
    for lf in wrench_expert_lfs(&d, 40) {
        set.try_add(lf);
    }
    let matrix = set.train_matrix();
    c.bench_function("labelmodel/metal_fit_1586x40", |b| {
        b.iter(|| {
            let mut lm = MetalModel::new().with_max_iter(25);
            lm.fit(black_box(matrix), 2);
            lm
        })
    });
    let mut lm = MetalModel::new().with_max_iter(25);
    lm.fit(matrix, 2);
    c.bench_function("labelmodel/metal_predict_1586x40", |b| {
        b.iter(|| lm.predict_proba(black_box(matrix)))
    });
    c.bench_function("labelmodel/majority_vote_1586x40", |b| {
        b.iter(|| {
            let mut mv = MajorityVote::new();
            mv.fit(black_box(matrix), 2);
            mv.predict_proba(black_box(matrix))
        })
    });
}

fn bench_end_model(c: &mut Criterion) {
    use datasculpt::endmodel::logreg::SparseRow;
    use datasculpt::text::HashedTfIdf;
    let d = DatasetName::Youtube.load_scaled(1, 1.0);
    let mut tfidf = HashedTfIdf::new(32_768, 1);
    tfidf.fit(d.train.iter().map(|i| i.tokens.as_slice()));
    let rows: Vec<SparseRow> = d
        .train
        .iter()
        .map(|i| {
            tfidf
                .transform_sparse(&i.tokens)
                .into_iter()
                .map(|(b, v)| (b as u32, v))
                .collect()
        })
        .collect();
    let targets: Vec<Vec<f64>> = d
        .train
        .iter()
        .map(|i| {
            let mut t = vec![0.0; 2];
            t[i.label.expect("labels")] = 1.0;
            t
        })
        .collect();
    let cfg = TrainConfig {
        epochs: 5,
        learning_rate: 5.0,
        l2: 0.0,
        batch_size: 64,
        seed: 0,
    };
    c.bench_function("endmodel/fit_sparse_5_epochs_1586", |b| {
        b.iter(|| {
            let mut m = SoftmaxRegression::new(32_768, 2);
            m.fit_sparse(black_box(&rows), black_box(&targets), None, &cfg);
            m
        })
    });
}

fn bench_dataset_generation(c: &mut Criterion) {
    c.bench_function("data/generate_youtube_full", |b| {
        b.iter(|| DatasetName::Youtube.load(black_box(7)))
    });
}

/// Columnar hot-path kernels vs their pre-refactor row-major baselines,
/// on an Agnews slice (the full-size comparison is `scripts/bench.sh` →
/// `BENCH_hotpath.json`). Shares fixtures and the baseline port with the
/// `hotpath` binary via `datasculpt_bench::hotpath`.
fn bench_hotpath_columnar_vs_rowmajor(c: &mut Criterion) {
    use datasculpt_bench::hotpath::{HotpathFixture, ESTEP_ITERS};
    let fx = HotpathFixture::load(DatasetName::Agnews, 0.05);
    c.bench_function("hotpath/index_build_agnews", |b| {
        b.iter(|| fx.kernel_index_build())
    });
    c.bench_function("hotpath/lf_apply_indexed_agnews", |b| {
        b.iter(|| fx.kernel_lf_apply())
    });
    c.bench_function("hotpath/lf_apply_rowscan_baseline_agnews", |b| {
        b.iter(|| fx.kernel_lf_apply_rowscan())
    });
    c.bench_function(
        &format!("hotpath/metal_estep_{ESTEP_ITERS}it_columnar_agnews"),
        |b| b.iter(|| fx.kernel_metal_estep()),
    );
    c.bench_function(
        &format!("hotpath/metal_estep_{ESTEP_ITERS}it_rowmajor_baseline_agnews"),
        |b| b.iter(|| fx.kernel_metal_estep_rowmajor()),
    );
    c.bench_function("hotpath/tfidf_featurize_agnews", |b| {
        b.iter(|| fx.kernel_tfidf())
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tokenize,
    bench_index_build_and_apply,
    bench_simulated_llm,
    bench_cache_and_batch,
    bench_label_model,
    bench_end_model,
    bench_dataset_generation,
    bench_hotpath_columnar_vs_rowmajor
);
criterion_main!(benches);
