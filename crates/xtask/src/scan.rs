//! Lexical source preparation for the lint rules.
//!
//! `ds-lint` deliberately avoids a full parser: the rules are all
//! expressible over a *scrubbed* view of the source in which comment and
//! string-literal contents are blanked out (so `"HashMap"` in a doc comment
//! or test fixture string never trips a rule), plus a per-line map of which
//! code lives inside `#[cfg(test)]` / `#[test]` regions (where every rule
//! is suspended — panics and unordered maps are fine in tests).
//!
//! The scrubber is a hand-rolled scanner over the byte stream that tracks
//! line comments, nested block comments, string / raw-string / byte-string
//! literals, character literals, and lifetimes (`'a` must not open a
//! character literal). Both output buffers are byte-for-byte the same
//! length as the input, so byte offsets & line numbers line up exactly.

/// One prepared source file.
#[derive(Debug)]
pub struct ScrubbedFile {
    /// Repo-relative path with forward slashes (display + scoping key).
    pub path: String,
    /// Per-line records, 0-indexed; line numbers in diagnostics are 1-based.
    pub lines: Vec<Line>,
    /// The whole scrubbed code buffer (same byte length as the input), for
    /// the token-stream passes in [`crate::tokens`]. Byte offsets into this
    /// buffer are valid offsets into the original source.
    pub code: String,
}

/// One line of a prepared file.
#[derive(Debug)]
pub struct Line {
    /// Code with comment and string contents blanked (quotes retained).
    pub code: String,
    /// Comment text of the line (everything else blanked).
    pub comment: String,
    /// True when the line falls inside a `#[cfg(test)]` or `#[test]` item.
    pub in_test: bool,
}

/// Scanner state for the scrubber.
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(usize),
    CharLit,
}

/// Byte at `i`, or NUL past the end. NUL never matches any byte the
/// scanner tests for, so `at(b, i + 1) == X` is equivalent to the guarded
/// `i + 1 < n && b[i + 1] == X`.
#[inline]
fn at(b: &[u8], i: usize) -> u8 {
    b.get(i).copied().unwrap_or(0)
}

/// Write `c` at `i`; silently ignores out-of-range writes.
#[inline]
fn put(buf: &mut [u8], i: usize, c: u8) {
    if let Some(slot) = buf.get_mut(i) {
        *slot = c;
    }
}

/// Blank `src` into parallel code and comment buffers.
///
/// Public for the property tests: both returned buffers are guaranteed to
/// be byte-for-byte the same length as `src`, whatever the input.
pub fn scrub(src: &str) -> (Vec<u8>, Vec<u8>) {
    let b = src.as_bytes();
    let n = b.len();
    let mut code = vec![b' '; n];
    let mut comment = vec![b' '; n];
    let mut state = State::Code;
    let mut i = 0;
    while i < n {
        let c = at(b, i);
        if c == b'\n' {
            put(&mut code, i, b'\n');
            put(&mut comment, i, b'\n');
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == b'/' && at(b, i + 1) == b'/' {
                    state = State::LineComment;
                    put(&mut comment, i, c);
                    put(&mut comment, i + 1, b'/');
                    i += 2;
                } else if c == b'/' && at(b, i + 1) == b'*' {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == b'"' {
                    put(&mut code, i, b'"');
                    state = State::Str;
                    i += 1;
                } else if (c == b'r' || c == b'b') && is_raw_or_str_start(b, i) {
                    // r"…", r#"…"#, b"…", br#"…"# — copy the prefix through
                    // to the opening quote, counting hashes on the way.
                    let mut j = i;
                    put(&mut code, j, at(b, j));
                    j += 1;
                    if at(b, j) == b'r' || at(b, j) == b'b' {
                        put(&mut code, j, at(b, j));
                        j += 1;
                    }
                    let mut hashes = 0;
                    while at(b, j) == b'#' {
                        put(&mut code, j, b'#');
                        hashes += 1;
                        j += 1;
                    }
                    put(&mut code, j, b'"');
                    state = if hashes == 0 && !raw_prefix(b, i) {
                        State::Str
                    } else {
                        State::RawStr(hashes)
                    };
                    i = j + 1;
                } else if c == b'\'' {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    let nxt = at(b, i + 1);
                    let next_alpha = nxt.is_ascii_alphanumeric() || nxt == b'_';
                    let closes = at(b, i + 2) == b'\'';
                    if next_alpha && !closes {
                        put(&mut code, i, c); // lifetime: leave as code
                        i += 1;
                    } else {
                        put(&mut code, i, b'\'');
                        state = State::CharLit;
                        i += 1;
                    }
                } else {
                    put(&mut code, i, c);
                    i += 1;
                }
            }
            State::LineComment => {
                put(&mut comment, i, c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == b'*' && at(b, i + 1) == b'/' {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == b'/' && at(b, i + 1) == b'*' {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    put(&mut comment, i, c);
                    i += 1;
                }
            }
            State::Str => {
                if c == b'\\' {
                    // Skip the escaped byte — unless it is a newline
                    // (line-continuation), which the top of the loop must
                    // see to keep line offsets aligned.
                    i += if at(b, i + 1) == b'\n' { 1 } else { 2 };
                } else if c == b'"' {
                    put(&mut code, i, b'"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == b'"' && closes_raw(b, i, hashes) {
                    put(&mut code, i, b'"');
                    for k in 0..hashes {
                        put(&mut code, i + 1 + k, b'#');
                    }
                    state = State::Code;
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
            }
            State::CharLit => {
                if c == b'\\' {
                    i += 2;
                } else if c == b'\'' {
                    put(&mut code, i, b'\'');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    (code, comment)
}

/// Whether `b[i]` (an `r` or `b`) starts a raw/byte string literal rather
/// than an identifier. The byte before must not be part of an identifier.
fn is_raw_or_str_start(b: &[u8], i: usize) -> bool {
    if i > 0 {
        let prev = at(b, i - 1);
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            return false;
        }
    }
    let mut j = i + 1;
    if at(b, j) == b'r' || at(b, j) == b'b' {
        j += 1;
    }
    while at(b, j) == b'#' {
        j += 1;
    }
    at(b, j) == b'"'
}

/// Whether the literal starting at `i` carries an `r` (raw) prefix.
fn raw_prefix(b: &[u8], i: usize) -> bool {
    at(b, i) == b'r' || at(b, i + 1) == b'r'
}

/// Whether the `"` at `i` is followed by `hashes` `#` bytes.
fn closes_raw(b: &[u8], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| at(b, i + k) == b'#')
}

/// Byte ranges of the scrubbed code covered by test-only items.
fn test_ranges(code: &[u8]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    for pat in [b"#[cfg(test)]".as_slice(), b"#[test]".as_slice()] {
        let mut from = 0;
        while let Some(hit) = find(code, pat, from) {
            let attr_end = hit + pat.len();
            from = attr_end;
            // The region runs from the attribute to the end of the next
            // item: the matching close of its first `{`, or a bare `;`.
            let mut j = attr_end;
            let mut depth = 0usize;
            let mut end = code.len();
            while j < code.len() {
                match at(code, j) {
                    b'{' => depth += 1,
                    b'}' => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            end = j + 1;
                            break;
                        }
                    }
                    b';' if depth == 0 => {
                        end = j + 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            ranges.push((hit, end));
        }
    }
    ranges.sort_unstable();
    ranges
}

/// First occurrence of `pat` in `hay` at or after `from`.
fn find(hay: &[u8], pat: &[u8], from: usize) -> Option<usize> {
    if pat.is_empty() || hay.len() < pat.len() {
        return None;
    }
    (from..=hay.len() - pat.len()).find(|&i| hay.get(i..i + pat.len()) == Some(pat))
}

/// Prepare one source file for rule matching.
pub fn prepare(path: &str, src: &str) -> ScrubbedFile {
    let (code, comment) = scrub(src);
    let ranges = test_ranges(&code);
    let mut lines = Vec::new();
    for (start, len) in split_keep_len(&code) {
        let end = start + len;
        let in_test = ranges.iter().any(|&(a, b)| start < b && end > a);
        lines.push(Line {
            code: String::from_utf8_lossy(code.get(start..end).unwrap_or(&[])).into_owned(),
            comment: String::from_utf8_lossy(comment.get(start..end).unwrap_or(&[])).into_owned(),
            in_test,
        });
    }
    ScrubbedFile {
        path: path.to_string(),
        lines,
        code: String::from_utf8_lossy(&code).into_owned(),
    }
}

/// `(start, len)` of each `\n`-separated line of `buf`.
fn split_keep_len(buf: &[u8]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = 0;
    for (i, &c) in buf.iter().enumerate() {
        if c == b'\n' {
            out.push((start, i - start));
            start = i + 1;
        }
    }
    if start < buf.len() {
        out.push((start, buf.len() - start));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = prepare(
            "x.rs",
            "let a = \"HashMap\"; // HashMap here\nlet b = HashMap::new();\n",
        );
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].comment.contains("HashMap here"));
        assert!(f.lines[1].code.contains("HashMap::new"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = prepare("x.rs", "let a = r#\"panic!(HashSet)\"#;\nlet b = 1;\n");
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(!f.lines[0].code.contains("HashSet"));
        assert!(f.lines[1].code.contains("let b = 1;"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let f = prepare(
            "x.rs",
            "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\nlet u = s.unwrap();\n",
        );
        assert!(f.lines[0].code.contains("fn f<'a>"));
        assert!(f.lines[2].code.contains(".unwrap()"));
    }

    #[test]
    fn escaped_quote_in_char_literal() {
        let f = prepare("x.rs", "let q = '\\'';\nlet u = v.unwrap();\n");
        assert!(f.lines[1].code.contains(".unwrap()"));
    }

    #[test]
    fn nested_block_comments() {
        let f = prepare("x.rs", "/* outer /* inner */ still comment */ let x = 1;\n");
        assert!(f.lines[0].code.contains("let x = 1;"));
        assert!(!f.lines[0].code.contains("inner"));
    }

    #[test]
    fn cfg_test_region_marks_lines() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\npub fn tail() {}\n";
        let f = prepare("x.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test, "code after the test mod is live again");
    }

    #[test]
    fn test_attr_covers_only_the_fn() {
        let src = "#[test]\nfn t() {\n    x.unwrap();\n}\nfn live() {}\n";
        let f = prepare("x.rs", src);
        assert!(f.lines[2].in_test);
        assert!(!f.lines[4].in_test);
    }

    #[test]
    fn cfg_test_on_use_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::Bar;\nfn live() { x.unwrap(); }\n";
        let f = prepare("x.rs", src);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn byte_strings_are_blanked() {
        let f = prepare("x.rs", "let a = b\"panic!\";\nlet b = br#\"todo!\"#;\n");
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(!f.lines[1].code.contains("todo!"));
    }
}
