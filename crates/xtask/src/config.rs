//! `lint.toml` — path-scoped rule configuration.
//!
//! ds-lint has zero dependencies, so this is a hand-rolled parser for the
//! small TOML subset the config needs:
//!
//! ```toml
//! # comment
//! [rule.hash-order]
//! enabled = true
//! paths = ["crates/core/src", "crates/llm/src"]
//! exclude = ["crates/core/src/generated"]
//! ```
//!
//! A rule applies to a file iff it is `enabled` (default), the file path
//! starts with one of `paths` (default: everything), and starts with none
//! of `exclude`. Paths are repo-relative with forward slashes.

use crate::rules::Rule;

/// Scoping for one rule.
#[derive(Debug, Clone, Default)]
pub struct RuleScope {
    /// Rule is entirely off when false.
    pub enabled: bool,
    /// Path prefixes the rule applies to; empty = all scanned files.
    pub paths: Vec<String>,
    /// Path prefixes the rule skips.
    pub exclude: Vec<String>,
}

impl RuleScope {
    fn on() -> Self {
        RuleScope {
            enabled: true,
            paths: Vec::new(),
            exclude: Vec::new(),
        }
    }

    /// Whether the rule applies to `path`.
    pub fn applies(&self, path: &str) -> bool {
        self.enabled
            && (self.paths.is_empty() || self.paths.iter().any(|p| path.starts_with(p.as_str())))
            && !self.exclude.iter().any(|p| path.starts_with(p.as_str()))
    }
}

/// The full lint configuration: one scope per rule.
#[derive(Debug, Clone)]
pub struct LintConfig {
    scopes: Vec<(Rule, RuleScope)>,
}

impl Default for LintConfig {
    /// Everything on, everywhere.
    fn default() -> Self {
        LintConfig {
            scopes: Rule::ALL.iter().map(|&r| (r, RuleScope::on())).collect(),
        }
    }
}

impl LintConfig {
    /// The scope for a rule.
    pub fn scope(&self, rule: Rule) -> &RuleScope {
        // `scopes` holds every rule by construction; the fallback covers
        // the (unreachable) miss without a panic path.
        const FALLBACK: &RuleScope = &RuleScope {
            enabled: true,
            paths: Vec::new(),
            exclude: Vec::new(),
        };
        self.scopes
            .iter()
            .find(|(r, _)| *r == rule)
            .map(|(_, s)| s)
            .unwrap_or(FALLBACK)
    }

    fn scope_mut(&mut self, rule: Rule) -> Option<&mut RuleScope> {
        self.scopes
            .iter_mut()
            .find(|(r, _)| *r == rule)
            .map(|(_, s)| s)
    }

    /// Every configured `(rule, "paths"|"exclude", entry)` triple, for
    /// dead-entry validation against the scanned file set.
    pub fn path_entries(&self) -> impl Iterator<Item = (Rule, &'static str, &str)> {
        self.scopes.iter().flat_map(|(rule, scope)| {
            let paths = scope.paths.iter().map(|p| (*rule, "paths", p.as_str()));
            let excludes = scope.exclude.iter().map(|p| (*rule, "exclude", p.as_str()));
            paths.chain(excludes)
        })
    }

    /// Validate that every `paths` / `exclude` entry matches at least one
    /// scanned file: a dead entry usually means a typo or a moved
    /// directory, silently widening (or narrowing) a gate.
    pub fn validate_against<'a, I>(&self, scanned: I) -> Result<(), String>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let files: Vec<&str> = scanned.into_iter().collect();
        let dead: Vec<String> = self
            .path_entries()
            .filter(|(_, _, entry)| !files.iter().any(|f| f.starts_with(entry)))
            .map(|(rule, key, entry)| {
                format!(
                    "[rule.{}] {key} entry \"{entry}\" matches no scanned file",
                    rule.name()
                )
            })
            .collect();
        if dead.is_empty() {
            Ok(())
        } else {
            Err(format!("config error:\n  {}", dead.join("\n  ")))
        }
    }

    /// Parse `lint.toml` text. Unknown rules or malformed lines are hard
    /// errors: a typo that silently disables a gate is worse than a build
    /// break.
    pub fn parse(text: &str) -> Result<LintConfig, String> {
        let mut cfg = LintConfig::default();
        let mut current: Option<Rule> = None;
        let mut lines = text.lines().enumerate();
        while let Some((no, raw)) = lines.next() {
            let mut line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            // Multi-line arrays: splice lines until the bracket closes.
            while line.contains('[')
                && !line.contains(']')
                && line
                    .split_once('=')
                    .is_some_and(|(_, v)| v.trim().starts_with('['))
            {
                let Some((_, cont)) = lines.next() else {
                    return Err(format!("line {}: unterminated array", no + 1));
                };
                line.push(' ');
                line.push_str(strip_comment(cont).trim());
            }
            let line = line.as_str();
            if let Some(section) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let Some(name) = section.strip_prefix("rule.") else {
                    return Err(format!("line {}: unknown section [{section}]", no + 1));
                };
                let Some(rule) = Rule::parse(name.trim()) else {
                    return Err(format!("line {}: unknown rule `{name}`", no + 1));
                };
                current = Some(rule);
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", no + 1));
            };
            let Some(rule) = current else {
                return Err(format!("line {}: key outside a [rule.*] section", no + 1));
            };
            let (key, value) = (key.trim(), value.trim());
            let Some(scope) = cfg.scope_mut(rule) else {
                continue; // unreachable: every rule has a scope
            };
            match key {
                "enabled" => match value {
                    "true" => scope.enabled = true,
                    "false" => scope.enabled = false,
                    other => {
                        return Err(format!(
                            "line {}: enabled must be true/false, got {other}",
                            no + 1
                        ))
                    }
                },
                "paths" => scope.paths = parse_string_array(value, no + 1)?,
                "exclude" => scope.exclude = parse_string_array(value, no + 1)?,
                other => return Err(format!("line {}: unknown key `{other}`", no + 1)),
            }
        }
        Ok(cfg)
    }
}

/// Strip a `#` comment, respecting (simple, escape-free) quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return line.get(..i).unwrap_or(line),
            _ => {}
        }
    }
    line
}

/// Parse `["a", "b"]` into its elements.
fn parse_string_array(value: &str, line_no: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("line {line_no}: expected a [\"...\"] array"))?;
    let inner = inner.trim().trim_end_matches(',');
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|item| {
            let item = item.trim();
            item.strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .map(str::to_string)
                .ok_or_else(|| format!("line {line_no}: array items must be quoted strings"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_applies_everywhere() {
        let cfg = LintConfig::default();
        assert!(cfg.scope(Rule::Panic).applies("crates/core/src/lib.rs"));
    }

    #[test]
    fn paths_and_exclude_scope_rules() {
        let cfg = LintConfig::parse(
            "[rule.hash-order]\npaths = [\"crates/core/src\"]\nexclude = [\"crates/core/src/gen\"]\n",
        )
        .unwrap();
        let s = cfg.scope(Rule::HashOrder);
        assert!(s.applies("crates/core/src/lib.rs"));
        assert!(!s.applies("crates/llm/src/lib.rs"));
        assert!(!s.applies("crates/core/src/gen/x.rs"));
        // Other rules untouched.
        assert!(cfg.scope(Rule::Panic).applies("crates/llm/src/lib.rs"));
    }

    #[test]
    fn enabled_false_disables() {
        let cfg = LintConfig::parse("[rule.unchecked-index]\nenabled = false\n").unwrap();
        assert!(!cfg
            .scope(Rule::UncheckedIndex)
            .applies("crates/core/src/lib.rs"));
    }

    #[test]
    fn multi_line_arrays_parse() {
        let cfg = LintConfig::parse(
            "[rule.hash-order]\npaths = [\n    \"crates/core/src\", # seeded\n    \"crates/llm/src\",\n]\n",
        )
        .unwrap();
        let s = cfg.scope(Rule::HashOrder);
        assert!(s.applies("crates/core/src/a.rs"));
        assert!(s.applies("crates/llm/src/a.rs"));
        assert!(!s.applies("crates/data/src/a.rs"));
    }

    #[test]
    fn unknown_rule_is_an_error() {
        assert!(LintConfig::parse("[rule.no-such]\n").is_err());
    }

    #[test]
    fn dead_path_entry_is_a_config_error() {
        let cfg = LintConfig::parse("[rule.hash-order]\npaths = [\"crates/nope/src\"]\n").unwrap();
        let err = cfg
            .validate_against(["crates/core/src/lib.rs"])
            .unwrap_err();
        assert!(err.contains("crates/nope/src"), "{err}");
        assert!(err.contains("matches no scanned file"), "{err}");
    }

    #[test]
    fn dead_exclude_entry_is_a_config_error() {
        let cfg = LintConfig::parse("[rule.panic]\nexclude = [\"crates/gone/src\"]\n").unwrap();
        assert!(cfg.validate_against(["crates/core/src/lib.rs"]).is_err());
    }

    #[test]
    fn live_entries_validate() {
        let cfg = LintConfig::parse(
            "[rule.hash-order]\npaths = [\"crates/core/src\"]\nexclude = [\"crates/core/src/gen\"]\n",
        )
        .unwrap();
        assert!(cfg
            .validate_against(["crates/core/src/lib.rs", "crates/core/src/gen/x.rs"])
            .is_ok());
    }

    #[test]
    fn unknown_key_is_an_error() {
        assert!(LintConfig::parse("[rule.panic]\nfoo = 1\n").is_err());
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let cfg =
            LintConfig::parse("# top\n\n[rule.panic] # trailing\npaths = [\"a\"] # why\n").unwrap();
        assert!(cfg.scope(Rule::Panic).applies("a/b.rs"));
    }
}
