//! `ds-lint`: repo-native static analysis for the DataSculpt workspace.
//!
//! Run as `cargo run -p datasculpt-xtask -- lint` (wired into
//! `scripts/check.sh`). The pass enforces three repo invariants that
//! rustc/clippy cannot express — panic-freedom on library paths, seeded
//! determinism (no unordered-map iteration, no wall-clock), and token
//! ledger integrity — over a scrubbed lexical view of `crates/*/src`.
//! See DESIGN.md, "Static analysis & invariants", for the rule catalogue
//! and the `// ds-lint: allow(<rule>): <reason>` suppression syntax.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod fix;
pub mod report;
pub mod rules;
pub mod scan;
pub mod tokens;

use config::LintConfig;
use rules::{Rule, Violation};
use std::path::{Path, PathBuf};

/// Result of linting a set of files.
#[derive(Debug)]
pub struct LintOutcome {
    /// All violations, ordered by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintOutcome {
    /// True when no violations were found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Lint already-loaded sources: `(repo-relative path, contents)` pairs.
///
/// This is the engine entry point the tests (and fixtures) drive directly;
/// [`lint_workspace`] wraps it with filesystem discovery.
pub fn lint_sources<'a, I>(sources: I, cfg: &LintConfig) -> LintOutcome
where
    I: IntoIterator<Item = (&'a str, &'a str)>,
{
    let mut violations = Vec::new();
    let mut files_scanned = 0;
    for (path, text) in sources {
        files_scanned += 1;
        let prepared = scan::prepare(path, text);
        let enabled = |rule: Rule| cfg.scope(rule).applies(path);
        violations.extend(rules::check_file(&prepared, &enabled));
    }
    violations
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    LintOutcome {
        violations,
        files_scanned,
    }
}

/// Discover every `crates/*/src/**/*.rs` file under `root`, sorted, as
/// repo-relative forward-slash paths.
pub fn discover_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("read {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut files = Vec::new();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// Recursively collect `.rs` files under `dir` (sorted per directory).
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the workspace rooted at `root` under `cfg`.
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> Result<LintOutcome, String> {
    let files = discover_sources(root)?;
    let mut loaded = Vec::with_capacity(files.len());
    for path in files {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        loaded.push((rel, text));
    }
    cfg.validate_against(loaded.iter().map(|(p, _)| p.as_str()))?;
    Ok(lint_sources(
        loaded.iter().map(|(p, t)| (p.as_str(), t.as_str())),
        cfg,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_sources_scopes_by_path() {
        let cfg = LintConfig::parse("[rule.hash-order]\npaths = [\"crates/core\"]\n").unwrap();
        let core = ("crates/core/src/a.rs", "use std::collections::HashMap;\n");
        let llm = ("crates/llm/src/b.rs", "use std::collections::HashMap;\n");
        let out = lint_sources([core, llm], &cfg);
        assert_eq!(out.files_scanned, 2);
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].file, "crates/core/src/a.rs");
    }

    #[test]
    fn violations_sort_stably() {
        let cfg = LintConfig::default();
        let a = ("b.rs", "fn f() { x.unwrap() }\n");
        let b = ("a.rs", "fn g() { panic!(\"x\") }\n");
        let out = lint_sources([a, b], &cfg);
        assert_eq!(out.violations[0].file, "a.rs");
        assert_eq!(out.violations[1].file, "b.rs");
    }
}
