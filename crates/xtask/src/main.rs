//! `cargo run -p datasculpt-xtask -- lint [--json] [--root DIR] [--config FILE]`
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage / IO / config error.

use datasculpt_xtask::config::LintConfig;
use datasculpt_xtask::report::{render_human, render_json, Summary};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str =
    "usage: cargo run -p datasculpt-xtask -- lint [--json] [--root DIR] [--config FILE]";

fn lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--config" => match it.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return usage_error("--config needs a value"),
            },
            other => return usage_error(&format!("unknown flag `{other}`")),
        }
    }
    let root = root.unwrap_or_else(find_repo_root);
    let explicit_config = config_path.is_some();
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    if explicit_config && !config_path.is_file() {
        eprintln!("ds-lint: config {} not found", config_path.display());
        return ExitCode::from(2);
    }
    let cfg = if config_path.is_file() {
        let text = match std::fs::read_to_string(&config_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("ds-lint: read {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        };
        match LintConfig::parse(&text) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("ds-lint: {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        LintConfig::default()
    };
    match datasculpt_xtask::lint_workspace(&root, &cfg) {
        Ok(outcome) => {
            let summary = Summary::of(&outcome.violations, outcome.files_scanned);
            if json {
                println!("{}", render_json(&outcome.violations, &summary));
            } else {
                print!("{}", render_human(&outcome.violations, &summary));
            }
            if outcome.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("ds-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("ds-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

/// The workspace root: the current directory if it has `crates/`, else two
/// levels above this crate's manifest (supports running from anywhere in
/// the workspace).
fn find_repo_root() -> PathBuf {
    let cwd = PathBuf::from(".");
    if cwd.join("crates").is_dir() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}
