//! `cargo run -p datasculpt-xtask -- lint [--json|--github|--sarif]
//! [--fix|--fix-dry-run] [--root DIR] [--config FILE]`
//!
//! Exit codes: 0 clean, 1 violations found (or, under `--fix-dry-run`,
//! fixes available), 2 usage / IO / config error.

use datasculpt_xtask::config::LintConfig;
use datasculpt_xtask::fix::{apply_fixes, render_diff};
use datasculpt_xtask::report::{render_github, render_human, render_json, render_sarif, Summary};
use datasculpt_xtask::rules::Violation;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(args.get(1..).unwrap_or(&[])),
        Some(other) => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: cargo run -p datasculpt-xtask -- lint \
     [--json|--github|--sarif] [--fix|--fix-dry-run] [--root DIR] [--config FILE]";

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Human,
    Json,
    Github,
    Sarif,
}

#[derive(PartialEq, Clone, Copy)]
enum FixMode {
    Off,
    Apply,
    DryRun,
}

fn lint(args: &[String]) -> ExitCode {
    let mut format = Format::Human;
    let mut fix_mode = FixMode::Off;
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--github" => format = Format::Github,
            "--sarif" => format = Format::Sarif,
            "--fix" => fix_mode = FixMode::Apply,
            "--fix-dry-run" => fix_mode = FixMode::DryRun,
            "--root" => match it.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--config" => match it.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return usage_error("--config needs a value"),
            },
            other => return usage_error(&format!("unknown flag `{other}`")),
        }
    }
    let root = root.unwrap_or_else(find_repo_root);
    let explicit_config = config_path.is_some();
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    if explicit_config && !config_path.is_file() {
        eprintln!("ds-lint: config {} not found", config_path.display());
        return ExitCode::from(2);
    }
    let cfg = if config_path.is_file() {
        let text = match std::fs::read_to_string(&config_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("ds-lint: read {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        };
        match LintConfig::parse(&text) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("ds-lint: {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        LintConfig::default()
    };
    match datasculpt_xtask::lint_workspace(&root, &cfg) {
        Ok(outcome) => {
            if fix_mode != FixMode::Off {
                return run_fixes(&root, &outcome.violations, fix_mode);
            }
            let summary = Summary::of(&outcome.violations, outcome.files_scanned);
            match format {
                Format::Human => print!("{}", render_human(&outcome.violations, &summary)),
                Format::Json => println!("{}", render_json(&outcome.violations, &summary)),
                Format::Github => print!("{}", render_github(&outcome.violations)),
                Format::Sarif => println!("{}", render_sarif(&outcome.violations, &summary)),
            }
            if outcome.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("ds-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Apply (or preview) the mechanical fixes carried by the violations.
/// `--fix-dry-run` exits 1 when edits are available so CI can assert a
/// clean tree proposes none.
fn run_fixes(root: &Path, violations: &[Violation], mode: FixMode) -> ExitCode {
    let mut files: Vec<&str> = violations
        .iter()
        .filter(|v| v.fix.is_some())
        .map(|v| v.file.as_str())
        .collect();
    files.dedup();
    let mut total = 0usize;
    let mut touched = 0usize;
    for file in files {
        let per_file: Vec<Violation> = violations
            .iter()
            .filter(|v| v.file == file)
            .cloned()
            .collect();
        let path = root.join(file);
        let src = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("ds-lint: read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let (fixed, n) = apply_fixes(&src, &per_file);
        if n == 0 {
            continue;
        }
        total += n;
        touched += 1;
        match mode {
            FixMode::Apply => {
                if let Err(e) = std::fs::write(&path, &fixed) {
                    eprintln!("ds-lint: write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            FixMode::DryRun | FixMode::Off => print!("{}", render_diff(file, &src, &fixed)),
        }
    }
    match mode {
        FixMode::Apply => {
            println!("ds-lint: applied {total} fixes in {touched} files");
            ExitCode::SUCCESS
        }
        FixMode::DryRun | FixMode::Off => {
            if total == 0 {
                println!("ds-lint: no fixes available");
                ExitCode::SUCCESS
            } else {
                println!("ds-lint: {total} fixes available in {touched} files (dry run)");
                ExitCode::from(1)
            }
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("ds-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

/// The workspace root: the current directory if it has `crates/`, else two
/// levels above this crate's manifest (supports running from anywhere in
/// the workspace).
fn find_repo_root() -> PathBuf {
    let cwd = PathBuf::from(".");
    if cwd.join("crates").is_dir() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}
