//! Mechanical `--fix` rewrites.
//!
//! A fixable `unchecked-index` violation carries the byte offsets of its
//! `[` / `]` pair ([`crate::rules::Fix`]); the rewrite replaces them with
//! `.get(` / `)`. Offsets point at ASCII bytes, every edit replaces
//! exactly one byte, and edits never overlap, so applying them in offset
//! order is a single left-to-right splice. `--fix-dry-run` renders the
//! would-be edits as a `-`/`+` line diff instead of writing anything.

use crate::rules::Violation;

/// Apply every fix span in `violations` (all for the same file) to `src`.
/// Returns the rewritten text and the number of index expressions fixed.
pub fn apply_fixes(src: &str, violations: &[Violation]) -> (String, usize) {
    let mut edits: Vec<(usize, &str)> = Vec::new();
    for v in violations {
        if let Some(f) = v.fix {
            edits.push((f.open, ".get("));
            edits.push((f.close, ")"));
        }
    }
    edits.sort_by_key(|&(off, _)| off);
    edits.dedup_by_key(|&mut (off, _)| off);
    let mut out = String::with_capacity(src.len() + edits.len() * 4);
    let mut cursor = 0usize;
    let mut applied = 0usize;
    for (off, rep) in edits {
        if off < cursor || off >= src.len() {
            continue;
        }
        out.push_str(src.get(cursor..off).unwrap_or(""));
        out.push_str(rep);
        cursor = off + 1;
        applied += 1;
    }
    out.push_str(src.get(cursor..).unwrap_or(""));
    (out, applied / 2)
}

/// Render the changed lines between `before` and `after` as a compact
/// `-`/`+` diff. Fixes never add or remove lines, so a line-wise zip is a
/// complete diff.
pub fn render_diff(path: &str, before: &str, after: &str) -> String {
    let mut out = String::new();
    for (i, (a, b)) in before.lines().zip(after.lines()).enumerate() {
        if a != b {
            out.push_str(&format!("{path}:{}:\n-{a}\n+{b}\n", i + 1));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LintConfig;
    use crate::lint_sources;

    fn fixes_for(path: &str, src: &str) -> Vec<Violation> {
        lint_sources([(path, src)], &LintConfig::default()).violations
    }

    #[test]
    fn rewrites_index_to_get() {
        let src = "fn f(v: &[u8], i: usize) -> Option<&u8> { let x = v[i]; x }\n";
        let (fixed, n) = apply_fixes(src, &fixes_for("a.rs", src));
        assert_eq!(n, 1);
        assert!(fixed.contains("v.get(i)"), "{fixed}");
        assert!(!fixed.contains("v[i]"));
    }

    #[test]
    fn nested_indexes_both_rewrite() {
        let src = "fn f() { let x = a[b[i]]; }\n";
        let (fixed, n) = apply_fixes(src, &fixes_for("a.rs", src));
        assert_eq!(n, 2);
        assert!(fixed.contains("a.get(b.get(i))"), "{fixed}");
    }

    #[test]
    fn unfixable_sites_are_left_alone() {
        let src = "fn f() { v[i] = 3; }\n";
        let (fixed, n) = apply_fixes(src, &fixes_for("a.rs", src));
        assert_eq!(n, 0);
        assert_eq!(fixed, src);
    }

    #[test]
    fn fix_round_trips_to_zero_findings() {
        let src =
            "fn f(v: &[f64], i: usize) {\n    let a = v[i];\n    let b = v\n        [i + 1];\n}\n";
        let vs = fixes_for("a.rs", src);
        assert!(!vs.is_empty());
        let (fixed, n) = apply_fixes(src, &vs);
        assert_eq!(n, 2);
        let again = fixes_for("a.rs", &fixed);
        assert!(again.is_empty(), "{again:?}\n{fixed}");
    }

    #[test]
    fn diff_lists_changed_lines_only() {
        let before = "a\nb\nc\n";
        let after = "a\nB\nc\n";
        let d = render_diff("x.rs", before, after);
        assert_eq!(d, "x.rs:2:\n-b\n+B\n");
    }
}
