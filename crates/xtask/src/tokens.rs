//! A Rust token-stream layer over the scrubbed code buffer.
//!
//! The lexical rules of PR 2 match byte patterns line by line; that is
//! enough for `panic!`-style macros but not for expression analysis: an
//! index expression can be separated from its receiver by whitespace or a
//! line break, an array *pattern* (`let [a, b] = xs`) is not an index at
//! all, and a fix needs the exact byte span of the `[` and its matching
//! `]`. This module lexes the scrubbed buffer (comments and literal
//! contents already blanked by [`crate::scan::scrub`], so the token stream
//! contains only real code) into a flat token list with byte spans,
//! 1-based line numbers, and matched bracket partners.
//!
//! The lexer never panics: unbalanced delimiters simply have no partner,
//! and truncated literals run to end of input.

/// Delimiter flavor of an [`TokKind::Open`] / [`TokKind::Close`] token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `(` / `)`
    Paren,
    /// `[` / `]`
    Bracket,
    /// `{` / `}`
    Brace,
}

/// Kind of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (keywords are classified by text).
    Ident,
    /// `'a`-style lifetime.
    Lifetime,
    /// Numeric literal (integer or float, including suffixes).
    Number,
    /// String literal (contents blanked by the scrubber).
    StrLit,
    /// Char literal (contents blanked by the scrubber).
    CharLit,
    /// Punctuation, maximal-munch (`::`, `=>`, `+=`, ...).
    Punct,
    /// Opening delimiter.
    Open(Delim),
    /// Closing delimiter.
    Close(Delim),
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Byte offset of the first byte (valid into the original source).
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: usize,
    /// Token text (scrubbed view — literal contents are blank).
    pub text: String,
    /// Index of the matching delimiter for `Open`/`Close`, when balanced.
    pub partner: Option<usize>,
}

/// The lexed token stream of one file.
#[derive(Debug)]
pub struct TokenStream {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
}

/// Multi-char punctuation, longest first (maximal munch).
const PUNCT3: [&str; 4] = ["<<=", ">>=", "..=", "..."];
const PUNCT2: [&str; 19] = [
    "==", "=>", "<=", ">=", "!=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "..", "::", "->",
    "&&", "||", "<<",
];

/// Rust keywords that can directly precede a `[` without making it an
/// index expression (pattern, type, or statement position).
const NON_EXPR_KEYWORDS: [&str; 27] = [
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "fn", "for", "if",
    "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "static",
    "struct", "type", "where",
];

/// Whether `word` is a keyword that cannot end an indexable expression.
pub fn is_non_expr_keyword(word: &str) -> bool {
    NON_EXPR_KEYWORDS.contains(&word)
}

fn byte_at(b: &[u8], i: usize) -> u8 {
    b.get(i).copied().unwrap_or(0)
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

impl TokenStream {
    /// Lex the scrubbed code buffer of one file.
    pub fn lex(code: &str) -> TokenStream {
        let b = code.as_bytes();
        let n = b.len();
        // Line starts, for offset -> line mapping.
        let mut line_starts = vec![0usize];
        for (i, &c) in b.iter().enumerate() {
            if c == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let line_of = |off: usize| line_starts.partition_point(|&s| s <= off);

        let mut toks: Vec<Tok> = Vec::new();
        let mut stack: Vec<(Delim, usize)> = Vec::new();
        let mut i = 0usize;
        while i < n {
            let c = byte_at(b, i);
            if c.is_ascii_whitespace() || c == 0 {
                i += 1;
                continue;
            }
            let start = i;
            let kind;
            if is_ident_start(c) && !c.is_ascii_digit() {
                while i < n && is_ident_cont(byte_at(b, i)) {
                    i += 1;
                }
                kind = TokKind::Ident;
            } else if c.is_ascii_digit() {
                while i < n && is_ident_cont(byte_at(b, i)) {
                    i += 1;
                }
                // Float part: `.` followed by a digit (so `0..n` stays a
                // range), then an optional signed exponent.
                if byte_at(b, i) == b'.' && byte_at(b, i + 1).is_ascii_digit() {
                    i += 1;
                    while i < n && is_ident_cont(byte_at(b, i)) {
                        i += 1;
                    }
                }
                if matches!(byte_at(b, i.wrapping_sub(1)), b'e' | b'E')
                    && matches!(byte_at(b, i), b'+' | b'-')
                    && byte_at(b, i + 1).is_ascii_digit()
                {
                    i += 1;
                    while i < n && is_ident_cont(byte_at(b, i)) {
                        i += 1;
                    }
                }
                kind = TokKind::Number;
            } else if c == b'"' {
                i += 1;
                while i < n && byte_at(b, i) != b'"' {
                    i += 1;
                }
                i = (i + 1).min(n);
                kind = TokKind::StrLit;
            } else if c == b'\'' {
                if is_ident_start(byte_at(b, i + 1)) || byte_at(b, i + 1).is_ascii_digit() {
                    // Lifetime: the scrubber leaves `'a` intact and blanks
                    // char-literal contents, so ident chars here mean a
                    // lifetime.
                    i += 1;
                    while i < n && is_ident_cont(byte_at(b, i)) {
                        i += 1;
                    }
                    kind = TokKind::Lifetime;
                } else {
                    i += 1;
                    while i < n && byte_at(b, i) != b'\'' {
                        i += 1;
                    }
                    i = (i + 1).min(n);
                    kind = TokKind::CharLit;
                }
            } else if let Some(d) = open_delim(c) {
                i += 1;
                kind = TokKind::Open(d);
                stack.push((d, toks.len()));
            } else if let Some(d) = close_delim(c) {
                i += 1;
                kind = TokKind::Close(d);
                if stack.last().is_some_and(|&(od, _)| od == d) {
                    if let Some((_, open_idx)) = stack.pop() {
                        let close_idx = toks.len();
                        if let Some(open_tok) = toks.get_mut(open_idx) {
                            open_tok.partner = Some(close_idx);
                        }
                        let text = String::from_utf8_lossy(&[c]).into_owned();
                        toks.push(Tok {
                            kind,
                            start,
                            end: i,
                            line: line_of(start),
                            text,
                            partner: Some(open_idx),
                        });
                        continue;
                    }
                }
            } else {
                // Punctuation, maximal munch.
                let rest = code.get(start..).unwrap_or("");
                let munch = PUNCT3
                    .iter()
                    .find(|p| rest.starts_with(**p))
                    .or_else(|| PUNCT2.iter().find(|p| rest.starts_with(**p)))
                    .map_or(1, |p| p.len());
                i = (start + munch).min(n);
                kind = TokKind::Punct;
            }
            let text = String::from_utf8_lossy(b.get(start..i).unwrap_or(&[])).into_owned();
            toks.push(Tok {
                kind,
                start,
                end: i,
                line: line_of(start),
                text,
                partner: None,
            });
        }
        TokenStream { toks }
    }

    /// The token at `idx`.
    pub fn get(&self, idx: usize) -> Option<&Tok> {
        self.toks.get(idx)
    }

    /// The token before `idx`, if any.
    pub fn prev(&self, idx: usize) -> Option<&Tok> {
        idx.checked_sub(1).and_then(|p| self.toks.get(p))
    }

    /// The token after `idx`, if any.
    pub fn next(&self, idx: usize) -> Option<&Tok> {
        self.toks.get(idx + 1)
    }
}

fn open_delim(c: u8) -> Option<Delim> {
    match c {
        b'(' => Some(Delim::Paren),
        b'[' => Some(Delim::Bracket),
        b'{' => Some(Delim::Brace),
        _ => None,
    }
}

fn close_delim(c: u8) -> Option<Delim> {
    match c {
        b')' => Some(Delim::Paren),
        b']' => Some(Delim::Bracket),
        b'}' => Some(Delim::Brace),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scrub;

    fn lex(src: &str) -> TokenStream {
        let (code, _) = scrub(src);
        TokenStream::lex(&String::from_utf8_lossy(&code))
    }

    fn texts(ts: &TokenStream) -> Vec<&str> {
        ts.toks.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn idents_numbers_punct() {
        let ts = lex("let x = v[i] + 1.5e-3;");
        assert_eq!(
            texts(&ts),
            vec!["let", "x", "=", "v", "[", "i", "]", "+", "1.5e-3", ";"]
        );
        assert_eq!(ts.toks.first().map(|t| t.line), Some(1));
    }

    #[test]
    fn brackets_are_matched() {
        let ts = lex("a[f(b)[0]]");
        // a [ f ( b ) [ 0 ] ]
        let open_outer = 1;
        let close_outer = 9;
        assert_eq!(
            ts.get(open_outer).and_then(|t| t.partner),
            Some(close_outer)
        );
        assert_eq!(
            ts.get(close_outer).and_then(|t| t.partner),
            Some(open_outer)
        );
        assert_eq!(ts.get(6).and_then(|t| t.partner), Some(8));
    }

    #[test]
    fn unbalanced_input_does_not_panic() {
        let ts = lex(")]}} [[(");
        assert!(ts.toks.iter().take(4).all(|t| t.partner.is_none()));
    }

    #[test]
    fn lifetimes_and_char_literals() {
        let ts = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(ts
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(ts.toks.iter().any(|t| t.kind == TokKind::CharLit));
    }

    #[test]
    fn multi_char_punct_munches() {
        let ts = lex("a += b; c ..= d; e => f; x..y");
        let puncts: Vec<&str> = ts
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert!(puncts.contains(&"+="));
        assert!(puncts.contains(&"..="));
        assert!(puncts.contains(&"=>"));
        assert!(puncts.contains(&".."));
    }

    #[test]
    fn multi_line_spans_and_lines() {
        let ts = lex("let a = xs\n    [i];\n");
        let open = ts
            .toks
            .iter()
            .position(|t| t.kind == TokKind::Open(Delim::Bracket));
        let open = open.and_then(|i| ts.get(i));
        assert_eq!(open.map(|t| t.line), Some(2));
    }

    #[test]
    fn strings_lex_as_single_tokens() {
        let ts = lex("let s = \"a [b] c\"; t[0]");
        assert_eq!(
            ts.toks.iter().filter(|t| t.kind == TokKind::StrLit).count(),
            1
        );
        // The bracket inside the string never becomes a token.
        assert_eq!(
            ts.toks
                .iter()
                .filter(|t| t.kind == TokKind::Open(Delim::Bracket))
                .count(),
            1
        );
    }
}
