//! Human and JSON rendering of lint results.

use crate::rules::{Rule, Violation};

/// Per-rule counts plus totals for one lint run.
#[derive(Debug)]
pub struct Summary {
    /// `(rule, violation count)` for every rule with at least one hit.
    pub per_rule: Vec<(Rule, usize)>,
    /// Total violations.
    pub total: usize,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Summary {
    /// Tally violations.
    pub fn of(violations: &[Violation], files_scanned: usize) -> Summary {
        let per_rule: Vec<(Rule, usize)> = Rule::ALL
            .iter()
            .map(|&r| (r, violations.iter().filter(|v| v.rule == r).count()))
            .filter(|&(_, n)| n > 0)
            .collect();
        Summary {
            per_rule,
            total: violations.len(),
            files_scanned,
        }
    }
}

/// Render the human-readable report.
pub fn render_human(violations: &[Violation], summary: &Summary) -> String {
    let mut out = String::new();
    for v in violations {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    {}\n",
            v.file,
            v.line,
            v.rule.name(),
            v.rule.message(),
            v.snippet
        ));
    }
    if summary.total == 0 {
        out.push_str(&format!(
            "ds-lint: clean ({} files scanned)\n",
            summary.files_scanned
        ));
    } else {
        let breakdown: Vec<String> = summary
            .per_rule
            .iter()
            .map(|(r, n)| format!("{}: {n}", r.name()))
            .collect();
        out.push_str(&format!(
            "ds-lint: {} violation{} ({}) across {} files\n",
            summary.total,
            if summary.total == 1 { "" } else { "s" },
            breakdown.join(", "),
            summary.files_scanned
        ));
    }
    out
}

/// Render the `--json` report (stable field order, one object).
pub fn render_json(violations: &[Violation], summary: &Summary) -> String {
    let mut out = String::from("{\"violations\":[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"rule\":{},\"message\":{},\"snippet\":{}}}",
            json_str(&v.file),
            v.line,
            json_str(v.rule.name()),
            json_str(v.rule.message()),
            json_str(&v.snippet)
        ));
    }
    out.push_str("],\"counts\":{");
    for (i, (r, n)) in summary.per_rule.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{n}", json_str(r.name())));
    }
    out.push_str(&format!(
        "}},\"files_scanned\":{},\"ok\":{}}}",
        summary.files_scanned,
        summary.total == 0
    ));
    out
}

/// Render GitHub workflow-command annotations, one `::warning` per
/// violation, so findings surface inline on PR diffs.
pub fn render_github(violations: &[Violation]) -> String {
    let mut out = String::new();
    for v in violations {
        // Workflow-command property values escape `%`, CR, LF, `:`, `,`.
        let esc = |s: &str| {
            s.replace('%', "%25")
                .replace('\r', "%0D")
                .replace('\n', "%0A")
                .replace(':', "%3A")
                .replace(',', "%2C")
        };
        out.push_str(&format!(
            "::warning file={},line={},title=ds-lint/{}::{}\n",
            esc(&v.file),
            v.line,
            v.rule.name(),
            v.rule.message().replace('\n', " ")
        ));
    }
    out
}

/// Render a SARIF 2.1.0 report (the subset CI code-scanning uploads need:
/// one run, one rule descriptor per fired rule, one result per violation).
pub fn render_sarif(violations: &[Violation], summary: &Summary) -> String {
    let mut out = String::from(
        "{\"version\":\"2.1.0\",\
         \"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"runs\":[{\"tool\":{\"driver\":{\"name\":\"ds-lint\",\"rules\":[",
    );
    for (i, (r, _)) in summary.per_rule.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}}}}",
            json_str(r.name()),
            json_str(r.message())
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"ruleId\":{},\"level\":\"warning\",\"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
             {{\"uri\":{}}},\"region\":{{\"startLine\":{}}}}}}}]}}",
            json_str(v.rule.name()),
            json_str(v.rule.message()),
            json_str(&v.file),
            v.line
        ));
    }
    out.push_str("]}]}");
    out
}

/// JSON-escape a string.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: Rule) -> Violation {
        Violation {
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            rule,
            snippet: "let x = \"q\";".into(),
            fix: None,
        }
    }

    #[test]
    fn human_report_lists_and_summarizes() {
        let vs = vec![v(Rule::Panic), v(Rule::Panic), v(Rule::HashOrder)];
        let s = Summary::of(&vs, 10);
        let text = render_human(&vs, &s);
        assert!(text.contains("crates/x/src/lib.rs:3: [panic]"));
        assert!(text.contains("3 violations (panic: 2, hash-order: 1) across 10 files"));
    }

    #[test]
    fn clean_report() {
        let s = Summary::of(&[], 5);
        assert!(render_human(&[], &s).contains("clean (5 files scanned)"));
    }

    #[test]
    fn github_annotations_escape_properties() {
        let mut viol = v(Rule::Panic);
        viol.file = "crates/x:y,z.rs".into();
        let text = render_github(&[viol]);
        assert!(text.starts_with("::warning file=crates/x%3Ay%2Cz.rs,line=3,"));
        assert!(text.contains("title=ds-lint/panic::"));
    }

    #[test]
    fn sarif_has_rules_and_results() {
        let vs = vec![v(Rule::Unwrap), v(Rule::Panic)];
        let s = Summary::of(&vs, 2);
        let j = render_sarif(&vs, &s);
        assert!(j.contains("\"version\":\"2.1.0\""));
        assert!(j.contains("\"id\":\"unwrap\""));
        assert!(j.contains("\"ruleId\":\"panic\""));
        assert!(j.contains("\"startLine\":3"));
        assert!(j.ends_with("]}]}"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let vs = vec![v(Rule::Unwrap)];
        let s = Summary::of(&vs, 1);
        let j = render_json(&vs, &s);
        assert!(j.contains("\"rule\":\"unwrap\""));
        assert!(j.contains("\\\"q\\\""), "quote escaped: {j}");
        assert!(j.contains("\"ok\":false"));
        assert!(j.ends_with('}'));
    }
}
