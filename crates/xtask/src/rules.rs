//! The rule families and the per-line matcher.
//!
//! Three invariants back the rules (see DESIGN.md, "Static analysis &
//! invariants"):
//!
//! * **panic-freedom** — library paths must not be able to abort the
//!   process: no `panic!`-family macros, no `unwrap`/`expect`, and (on
//!   configured paths) no unchecked `[...]` indexing.
//! * **determinism** — the seeded crates promise "same seed → same LFs →
//!   same ledger"; iteration over `HashMap`/`HashSet` and wall-clock /
//!   OS-entropy sources break that silently.
//! * **ledger integrity** — token/cost accounting must neither drop
//!   fallible results (`let _ =`) nor round through lossy `as` casts.
//!
//! Every rule can be suppressed inline with a justified annotation:
//! `// ds-lint: allow(<rule>): <reason>` on the offending line or the line
//! directly above it. A suppression without a reason, or naming an unknown
//! rule, is itself a violation (`bad-suppression`).

use crate::scan::ScrubbedFile;

/// One rule family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!` on lib paths.
    Panic,
    /// `.unwrap()` / `.expect(` on lib paths.
    Unwrap,
    /// `expr[index]` indexing (may panic) on configured paths.
    UncheckedIndex,
    /// `HashMap` / `HashSet` in seeded crates (unordered iteration hazard).
    HashOrder,
    /// `SystemTime::now` / `Instant::now` / `thread_rng` outside bench.
    WallClock,
    /// `let _ =` discarding a (potentially fallible) result.
    DiscardedResult,
    /// Lossy `as` casts on accounting paths.
    LossyCast,
    /// Raw `std::thread::spawn` / `std::thread::scope` outside the exec
    /// crate (bypasses the deterministic pool).
    RawThread,
    /// `String`-keyed map/set in an arena-migrated module (per-key heap
    /// allocations on the hot path; intern into a `TokenArena` instead).
    StringKeyedMap,
    /// Malformed `ds-lint` suppression comment.
    BadSuppression,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 10] = [
        Rule::Panic,
        Rule::Unwrap,
        Rule::UncheckedIndex,
        Rule::HashOrder,
        Rule::WallClock,
        Rule::DiscardedResult,
        Rule::LossyCast,
        Rule::RawThread,
        Rule::StringKeyedMap,
        Rule::BadSuppression,
    ];

    /// The name used in config sections and `allow(...)` annotations.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Unwrap => "unwrap",
            Rule::UncheckedIndex => "unchecked-index",
            Rule::HashOrder => "hash-order",
            Rule::WallClock => "wall-clock",
            Rule::DiscardedResult => "discarded-result",
            Rule::LossyCast => "lossy-cast",
            Rule::RawThread => "raw-thread",
            Rule::StringKeyedMap => "string-keyed-map",
            Rule::BadSuppression => "bad-suppression",
        }
    }

    /// Parse an `allow(...)` / config rule name.
    pub fn parse(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }

    /// The diagnostic shown for a violation of this rule.
    pub fn message(&self) -> &'static str {
        match self {
            Rule::Panic => "panicking macro on a library path; return an error instead",
            Rule::Unwrap => "unwrap()/expect() on a library path; propagate the error",
            Rule::UncheckedIndex => "unchecked indexing may panic; use .get() or justify the bound",
            Rule::HashOrder => {
                "HashMap/HashSet in a seeded crate: iteration order is nondeterministic; \
                 use BTreeMap/BTreeSet or a sorted Vec"
            }
            Rule::WallClock => {
                "wall-clock / OS-entropy source breaks seeded reproducibility outside bench"
            }
            Rule::DiscardedResult => "`let _ =` may silently drop a fallible result",
            Rule::LossyCast => "lossy `as` cast on an accounting path; use integer arithmetic",
            Rule::RawThread => {
                "raw thread::spawn/thread::scope outside crates/exec; use the exec Pool so \
                 results stay deterministic and panics are contained"
            }
            Rule::StringKeyedMap => {
                "String-keyed map/set in an arena-migrated module allocates per key; \
                 intern through TokenArena and key by u32 symbol"
            }
            Rule::BadSuppression => {
                "malformed ds-lint suppression: expected `ds-lint: allow(<rule>): <reason>` \
                 with a known rule and a non-empty reason"
            }
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Trimmed source excerpt of the offending line.
    pub snippet: String,
}

/// A parsed, well-formed suppression annotation.
struct Suppression {
    rule: Rule,
}

/// Parse the `ds-lint:` annotation of a comment line, if any.
///
/// Only a comment that *begins* with `ds-lint:` (after the `//`/`///`/`//!`
/// marker) is an annotation — prose that merely mentions the syntax, like
/// this doc comment, is ignored. Returns `(valid, malformed_count)`.
fn parse_suppressions(comment: &str) -> (Vec<Suppression>, usize) {
    let mut valid = Vec::new();
    let mut malformed = 0;
    let content = comment
        .trim_start()
        .trim_start_matches(['/', '!'])
        .trim_start();
    let mut rest = content;
    while rest.starts_with("ds-lint:") {
        let after = &rest["ds-lint:".len()..];
        rest = after;
        let body = after.trim_start();
        let Some(args) = body.strip_prefix("allow(") else {
            malformed += 1;
            continue;
        };
        let Some(close) = args.find(')') else {
            malformed += 1;
            continue;
        };
        let name = args[..close].trim();
        let tail = &args[close + 1..];
        let Some(reason) = tail.trim_start().strip_prefix(':') else {
            malformed += 1;
            continue;
        };
        // The reason ends at the next annotation, if any.
        let (reason, next) = match reason.find("ds-lint:") {
            Some(at) => (&reason[..at], &reason[at..]),
            None => (reason, ""),
        };
        match Rule::parse(name) {
            Some(rule) if !reason.trim().is_empty() => valid.push(Suppression { rule }),
            _ => malformed += 1,
        }
        rest = next;
    }
    (valid, malformed)
}

/// Match every enabled rule against one prepared file.
///
/// `enabled` decides, per rule, whether it applies to this file (path
/// scoping happens in [`crate::config`]). Test regions are exempt from all
/// rules except `bad-suppression` (a malformed annotation is wrong
/// anywhere).
pub fn check_file(file: &ScrubbedFile, enabled: &dyn Fn(Rule) -> bool) -> Vec<Violation> {
    let mut out = Vec::new();
    // Pass 1: collect suppressions (and flag malformed ones).
    let mut allows: Vec<Vec<Rule>> = Vec::with_capacity(file.lines.len());
    for (idx, line) in file.lines.iter().enumerate() {
        let (valid, malformed) = parse_suppressions(&line.comment);
        allows.push(valid.iter().map(|s| s.rule).collect());
        for _ in 0..malformed {
            out.push(Violation {
                file: file.path.clone(),
                line: idx + 1,
                rule: Rule::BadSuppression,
                snippet: line.comment.trim().to_string(),
            });
        }
    }
    // Pass 2: match rules line by line.
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();
        let suppressed = |rule: Rule| {
            allows[idx].contains(&rule) || (idx > 0 && allows[idx - 1].contains(&rule))
        };
        let mut push = |rule: Rule| {
            if enabled(rule) && !suppressed(rule) {
                out.push(Violation {
                    file: file.path.clone(),
                    line: idx + 1,
                    rule,
                    snippet: code.trim().to_string(),
                });
            }
        };
        if ["panic!", "unreachable!", "todo!", "unimplemented!"]
            .iter()
            .any(|p| code.contains(p))
        {
            push(Rule::Panic);
        }
        if code.contains(".unwrap()") || code.contains(".expect(") {
            push(Rule::Unwrap);
        }
        if has_index_expr(code) {
            push(Rule::UncheckedIndex);
        }
        if code.contains("HashMap") || code.contains("HashSet") {
            push(Rule::HashOrder);
        }
        if ["SystemTime::now", "Instant::now", "thread_rng"]
            .iter()
            .any(|p| code.contains(p))
        {
            push(Rule::WallClock);
        }
        if code.contains("let _ =") {
            push(Rule::DiscardedResult);
        }
        if has_lossy_cast(code) {
            push(Rule::LossyCast);
        }
        if code.contains("thread::spawn") || code.contains("thread::scope") {
            push(Rule::RawThread);
        }
        if has_string_keyed_map(code) {
            push(Rule::StringKeyedMap);
        }
    }
    out.sort_by_key(|a| (a.line, a.rule));
    out
}

/// Whether the scrubbed line contains an index expression `expr[...]`:
/// a `[` directly preceded by an identifier character, `)`, or `]`.
/// (`#[attr]`, `vec![...]`, slice types `&[T]`, and array literals never
/// match: their `[` follows `#`, `!`, `&`, or whitespace.)
fn has_index_expr(code: &str) -> bool {
    let b = code.as_bytes();
    b.iter().enumerate().skip(1).any(|(i, &c)| {
        c == b'['
            && (b[i - 1].is_ascii_alphanumeric()
                || b[i - 1] == b'_'
                || b[i - 1] == b')'
                || b[i - 1] == b']')
    })
}

/// Whether the scrubbed line declares a map or set keyed by an owned
/// `String` (directly, or as the first element of a tuple key):
/// `HashMap<String, _>`, `BTreeMap<(String, ...), _>`, `BTreeSet<String>`,
/// and friends. A `String` *value* (`Map<u32, String>`) never matches.
fn has_string_keyed_map(code: &str) -> bool {
    ["Map<", "Set<"].iter().any(|kind| {
        let mut rest = code;
        while let Some(at) = rest.find(kind) {
            let key = rest[at + kind.len()..].trim_start();
            if key.starts_with("String") || key.starts_with("(String") {
                return true;
            }
            rest = &rest[at + kind.len()..];
        }
        false
    })
}

/// Whether the scrubbed line contains `as <numeric-type>`.
fn has_lossy_cast(code: &str) -> bool {
    const NUMERIC: [&str; 12] = [
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "f32", "f64",
    ];
    let mut rest = code;
    while let Some(at) = rest.find(" as ") {
        let tail = rest[at + 4..].trim_start();
        let ident: String = tail
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if NUMERIC.contains(&ident.as_str()) {
            return true;
        }
        rest = &rest[at + 4..];
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::prepare;

    fn all(src: &str) -> Vec<Violation> {
        check_file(&prepare("t.rs", src), &|_| true)
    }

    fn rules_of(v: &[Violation]) -> Vec<Rule> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn panic_family_is_flagged() {
        let v = all("fn f() { panic!(\"x\") }\nfn g() { todo!() }\n");
        assert_eq!(rules_of(&v), vec![Rule::Panic, Rule::Panic]);
    }

    #[test]
    fn unwrap_in_tests_is_exempt() {
        let v = all("#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn hash_order_in_doc_comment_is_exempt() {
        let v = all("//! Uses a HashMap internally? No.\nfn f() {}\n");
        assert!(v.is_empty());
    }

    #[test]
    fn suppression_with_reason_suppresses_same_line() {
        let v = all("use std::collections::HashMap; // ds-lint: allow(hash-order): lookup only\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn suppression_on_previous_line_suppresses() {
        let v = all("// ds-lint: allow(panic): boot-time invariant\nfn f() { panic!(\"x\") }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn suppression_without_reason_is_a_violation() {
        let v = all("let m = std::collections::HashMap::new(); // ds-lint: allow(hash-order):\n");
        assert_eq!(rules_of(&v), vec![Rule::HashOrder, Rule::BadSuppression]);
    }

    #[test]
    fn suppression_with_unknown_rule_is_a_violation() {
        let v = all("fn f() { x.unwrap() } // ds-lint: allow(no-such-rule): because\n");
        assert_eq!(rules_of(&v), vec![Rule::Unwrap, Rule::BadSuppression]);
    }

    #[test]
    fn suppression_only_covers_its_rule() {
        let v = all("// ds-lint: allow(panic): justified\nfn f() { panic!(\"x\"); y.unwrap(); }\n");
        assert_eq!(rules_of(&v), vec![Rule::Unwrap]);
    }

    #[test]
    fn index_expression_heuristic() {
        assert!(has_index_expr("let x = v[i];"));
        assert!(has_index_expr("m.rows[r * c + 1]"));
        assert!(has_index_expr("f()[0]"));
        assert!(!has_index_expr("#[derive(Debug)]"));
        assert!(!has_index_expr("let v: &[u8] = x;"));
        assert!(!has_index_expr("vec![1, 2]"));
        assert!(!has_index_expr("let a = [0u8; 4];"));
    }

    #[test]
    fn lossy_cast_detection() {
        assert!(has_lossy_cast("let x = tokens as f64;"));
        assert!(has_lossy_cast("(n as u32)"));
        assert!(!has_lossy_cast("let x = y as Box<dyn Error>;"));
        assert!(!has_lossy_cast("measured"));
    }

    #[test]
    fn string_keyed_map_heuristic() {
        assert!(has_string_keyed_map(
            "seen: BTreeSet<(String, usize, bool)>,"
        ));
        assert!(has_string_keyed_map("m: HashMap<String, u32>,"));
        assert!(has_string_keyed_map(
            "x: BTreeMap<(String, bool), Outcome>,"
        ));
        assert!(!has_string_keyed_map("m: BTreeMap<u32, String>,"));
        assert!(!has_string_keyed_map("s: BTreeSet<(u32, usize, bool)>,"));
        assert!(!has_string_keyed_map("let s = String::new();"));
    }

    #[test]
    fn string_keyed_map_is_flagged_and_suppressible() {
        let v = all("struct S { m: std::collections::BTreeMap<String, u32> }\n");
        assert_eq!(rules_of(&v), vec![Rule::StringKeyedMap]);
        let v = all("// ds-lint: allow(string-keyed-map): cold config path\n\
             struct S { m: std::collections::BTreeMap<String, u32> }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn wall_clock_and_discarded_result() {
        let v = all("fn f() { let t = std::time::Instant::now(); let _ = call(); }\n");
        assert_eq!(rules_of(&v), vec![Rule::WallClock, Rule::DiscardedResult]);
    }

    #[test]
    fn raw_thread_is_flagged() {
        let v =
            all("fn f() { std::thread::spawn(|| {}); }\nfn g() { std::thread::scope(|s| {}); }\n");
        assert_eq!(rules_of(&v), vec![Rule::RawThread, Rule::RawThread]);
    }

    #[test]
    fn raw_thread_suppression_works() {
        let v = all("// ds-lint: allow(raw-thread): pool internals\nfn f() { std::thread::scope(|s| {}); }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn disabled_rules_do_not_fire() {
        let f = prepare("t.rs", "fn f() { panic!(\"x\") }\n");
        let v = check_file(&f, &|r| r != Rule::Panic);
        assert!(v.is_empty());
    }
}
