//! The rule families and the per-file matcher.
//!
//! Three invariants back the rules (see DESIGN.md, "Static analysis &
//! invariants", and docs/lint.md for the full catalogue):
//!
//! * **panic-freedom** — library paths must not be able to abort the
//!   process: no `panic!`-family macros, no `unwrap`/`expect`, and no
//!   unchecked `[...]` indexing.
//! * **determinism** — the seeded crates promise "same seed → same LFs →
//!   same ledger"; iteration over `HashMap`/`HashSet`, wall-clock /
//!   OS-entropy sources, partial float orderings, and out-of-order shard
//!   merges break that silently.
//! * **ledger integrity** — token/cost accounting must neither drop
//!   fallible results (`let _ =`) nor round through lossy `as` casts.
//!
//! Most rules are line-lexical over the scrubbed view; `unchecked-index`,
//! `float-total-order`, and `exec-merge-order` run on the token stream
//! from [`crate::tokens`], which distinguishes index *expressions* from
//! array patterns / attributes / macro brackets and can follow a method
//! chain across lines.
//!
//! Every rule can be suppressed inline with a justified annotation:
//! `// ds-lint: allow(<rule>): <reason>` (or several rules at once:
//! `allow(rule-a, rule-b): <reason>`) on the offending line or the line
//! directly above it. A suppression without a reason, or naming an unknown
//! rule, is itself a violation (`bad-suppression`).

use crate::scan::ScrubbedFile;
use crate::tokens::{is_non_expr_keyword, Delim, TokKind, TokenStream};

/// One rule family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!` on lib paths.
    Panic,
    /// `.unwrap()` / `.expect(` on lib paths.
    Unwrap,
    /// Index *expression* `expr[...]` (may panic) on configured paths.
    UncheckedIndex,
    /// `HashMap` / `HashSet` in seeded crates (unordered iteration hazard).
    HashOrder,
    /// `.partial_cmp(` on seeded paths: partial float orderings make
    /// sorts/maxima input-order-dependent around NaN; use `total_cmp`.
    FloatTotalOrder,
    /// Shard results from `map_shards` reduced out of order (`rev`,
    /// `rfold`, `sort*` on the result binding): merges must fold
    /// left-to-right to stay bit-identical across thread counts.
    ExecMergeOrder,
    /// `SystemTime::now` / `Instant::now` / `thread_rng` outside bench.
    WallClock,
    /// `let _ =` discarding a (potentially fallible) result.
    DiscardedResult,
    /// A statement-position write/flush/sync call whose `io::Result` is
    /// dropped on a durability path: the caller believes the bytes are on
    /// disk when the kernel may have said otherwise.
    DiscardedIoResult,
    /// Lossy `as` casts on accounting paths.
    LossyCast,
    /// Raw `std::thread::spawn` / `std::thread::scope` outside the exec
    /// crate (bypasses the deterministic pool).
    RawThread,
    /// `String`-keyed map/set in an arena-migrated module (per-key heap
    /// allocations on the hot path; intern into a `TokenArena` instead).
    StringKeyedMap,
    /// Malformed `ds-lint` suppression comment.
    BadSuppression,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 13] = [
        Rule::Panic,
        Rule::Unwrap,
        Rule::UncheckedIndex,
        Rule::HashOrder,
        Rule::FloatTotalOrder,
        Rule::ExecMergeOrder,
        Rule::WallClock,
        Rule::DiscardedResult,
        Rule::DiscardedIoResult,
        Rule::LossyCast,
        Rule::RawThread,
        Rule::StringKeyedMap,
        Rule::BadSuppression,
    ];

    /// The name used in config sections and `allow(...)` annotations.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Unwrap => "unwrap",
            Rule::UncheckedIndex => "unchecked-index",
            Rule::HashOrder => "hash-order",
            Rule::FloatTotalOrder => "float-total-order",
            Rule::ExecMergeOrder => "exec-merge-order",
            Rule::WallClock => "wall-clock",
            Rule::DiscardedResult => "discarded-result",
            Rule::DiscardedIoResult => "discarded-io-result",
            Rule::LossyCast => "lossy-cast",
            Rule::RawThread => "raw-thread",
            Rule::StringKeyedMap => "string-keyed-map",
            Rule::BadSuppression => "bad-suppression",
        }
    }

    /// Parse an `allow(...)` / config rule name.
    pub fn parse(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }

    /// The diagnostic shown for a violation of this rule.
    pub fn message(&self) -> &'static str {
        match self {
            Rule::Panic => "panicking macro on a library path; return an error instead",
            Rule::Unwrap => "unwrap()/expect() on a library path; propagate the error",
            Rule::UncheckedIndex => {
                "unchecked index expression may panic; use .get()/iterators or justify the bound"
            }
            Rule::HashOrder => {
                "HashMap/HashSet in a seeded crate: iteration order is nondeterministic; \
                 use BTreeMap/BTreeSet or a sorted Vec"
            }
            Rule::FloatTotalOrder => {
                "partial float comparison on a seeded path; use f64::total_cmp so \
                 ordering is total and NaN-stable"
            }
            Rule::ExecMergeOrder => {
                "shard results must merge left-to-right: rev/rfold/sort on a map_shards \
                 result makes the reduction depend on shard count"
            }
            Rule::WallClock => {
                "wall-clock / OS-entropy source breaks seeded reproducibility outside bench"
            }
            Rule::DiscardedResult => "`let _ =` may silently drop a fallible result",
            Rule::DiscardedIoResult => {
                "write/flush/sync result dropped on a durability path: a failed append \
                 becomes silent data loss at the next crash; propagate with `?` or bind it"
            }
            Rule::LossyCast => "lossy `as` cast on an accounting path; use integer arithmetic",
            Rule::RawThread => {
                "raw thread::spawn/thread::scope outside crates/exec; use the exec Pool so \
                 results stay deterministic and panics are contained"
            }
            Rule::StringKeyedMap => {
                "String-keyed map/set in an arena-migrated module allocates per key; \
                 intern through TokenArena and key by u32 symbol"
            }
            Rule::BadSuppression => {
                "malformed ds-lint suppression: expected `ds-lint: allow(<rule>): <reason>` \
                 with known rule(s) and a non-empty reason"
            }
        }
    }
}

/// A mechanical fix for one violation: byte offsets (into the original
/// source) of the `[` and `]` to rewrite as `.get(` / `)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fix {
    /// Offset of the opening `[`.
    pub open: usize,
    /// Offset of the matching `]`.
    pub close: usize,
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Trimmed source excerpt of the offending line.
    pub snippet: String,
    /// Mechanical rewrite, when one is known (`--fix` consumes this).
    pub fix: Option<Fix>,
}

/// Parse the `ds-lint:` annotation of a comment line, if any.
///
/// Only a comment that *begins* with `ds-lint:` (after the `//`/`///`/`//!`
/// marker) is an annotation — prose that merely mentions the syntax, like
/// this doc comment, is ignored. One annotation may allow several rules:
/// `allow(rule-a, rule-b): reason`. Returns `(allowed rules, malformed
/// annotation count)`.
fn parse_suppressions(comment: &str) -> (Vec<Rule>, usize) {
    let mut valid = Vec::new();
    let mut malformed = 0;
    let content = comment
        .trim_start()
        .trim_start_matches(['/', '!'])
        .trim_start();
    let mut rest = content;
    while let Some(after) = rest.strip_prefix("ds-lint:") {
        rest = after;
        let body = after.trim_start();
        let Some(args) = body.strip_prefix("allow(") else {
            malformed += 1;
            continue;
        };
        let Some(close) = args.find(')') else {
            malformed += 1;
            continue;
        };
        let (names, tail) = args.split_at(close);
        let tail = tail.trim_start_matches(')');
        let Some(reason) = tail.trim_start().strip_prefix(':') else {
            malformed += 1;
            continue;
        };
        // The reason ends at the next annotation, if any.
        let (reason, next) = match reason.find("ds-lint:") {
            Some(at) => reason.split_at(at),
            None => (reason, ""),
        };
        let rules: Option<Vec<Rule>> = names
            .split(',')
            .map(|name| Rule::parse(name.trim()))
            .collect();
        match rules {
            Some(rules) if !rules.is_empty() && !reason.trim().is_empty() => {
                valid.extend(rules);
            }
            _ => malformed += 1,
        }
        rest = next;
    }
    (valid, malformed)
}

/// Match every enabled rule against one prepared file.
///
/// `enabled` decides, per rule, whether it applies to this file (path
/// scoping happens in [`crate::config`]). Test regions are exempt from all
/// rules except `bad-suppression` (a malformed annotation is wrong
/// anywhere).
pub fn check_file(file: &ScrubbedFile, enabled: &dyn Fn(Rule) -> bool) -> Vec<Violation> {
    let mut out = Vec::new();
    // Pass 1: collect suppressions (and flag malformed ones).
    let mut allows: Vec<Vec<Rule>> = Vec::with_capacity(file.lines.len());
    for (idx, line) in file.lines.iter().enumerate() {
        let (valid, malformed) = parse_suppressions(&line.comment);
        allows.push(valid);
        for _ in 0..malformed {
            out.push(Violation {
                file: file.path.clone(),
                line: idx + 1,
                rule: Rule::BadSuppression,
                snippet: line.comment.trim().to_string(),
                fix: None,
            });
        }
    }
    let allow_at = |idx: usize| allows.get(idx).map(Vec::as_slice).unwrap_or(&[]);
    // A violation on 1-based `line` is suppressed by an allow on the same
    // line or the line directly above.
    let suppressed = |line: usize, rule: Rule| {
        line.checked_sub(1)
            .is_some_and(|i| allow_at(i).contains(&rule))
            || line
                .checked_sub(2)
                .is_some_and(|i| allow_at(i).contains(&rule))
    };
    // Pass 2: line-lexical rules.
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();
        let mut push = |rule: Rule| {
            if enabled(rule) && !suppressed(idx + 1, rule) {
                out.push(Violation {
                    file: file.path.clone(),
                    line: idx + 1,
                    rule,
                    snippet: code.trim().to_string(),
                    fix: None,
                });
            }
        };
        if ["panic!", "unreachable!", "todo!", "unimplemented!"]
            .iter()
            .any(|p| code.contains(p))
        {
            push(Rule::Panic);
        }
        if code.contains(".unwrap()") || code.contains(".expect(") {
            push(Rule::Unwrap);
        }
        if code.contains("HashMap") || code.contains("HashSet") {
            push(Rule::HashOrder);
        }
        if ["SystemTime::now", "Instant::now", "thread_rng"]
            .iter()
            .any(|p| code.contains(p))
        {
            push(Rule::WallClock);
        }
        if code.contains("let _ =") {
            push(Rule::DiscardedResult);
        }
        if has_lossy_cast(code) {
            push(Rule::LossyCast);
        }
        if code.contains("thread::spawn") || code.contains("thread::scope") {
            push(Rule::RawThread);
        }
        if has_string_keyed_map(code) {
            push(Rule::StringKeyedMap);
        }
    }
    // Pass 3: token-stream rules.
    let in_test = |line: usize| {
        line.checked_sub(1)
            .and_then(|i| file.lines.get(i))
            .is_some_and(|l| l.in_test)
    };
    let snippet_of = |line: usize| {
        line.checked_sub(1)
            .and_then(|i| file.lines.get(i))
            .map(|l| l.code.trim().to_string())
            .unwrap_or_default()
    };
    let ts = TokenStream::lex(&file.code);
    let mut tok_hits: Vec<(Rule, usize, Option<Fix>)> = Vec::new();
    if enabled(Rule::UncheckedIndex) {
        unchecked_index_pass(&ts, &mut tok_hits);
    }
    if enabled(Rule::FloatTotalOrder) {
        float_total_order_pass(&ts, &mut tok_hits);
    }
    if enabled(Rule::ExecMergeOrder) {
        exec_merge_order_pass(&ts, &mut tok_hits);
    }
    if enabled(Rule::DiscardedIoResult) {
        discarded_io_result_pass(&ts, &mut tok_hits);
    }
    for (rule, line, fix) in tok_hits {
        if !in_test(line) && !suppressed(line, rule) {
            out.push(Violation {
                file: file.path.clone(),
                line,
                rule,
                snippet: snippet_of(line),
                fix,
            });
        }
    }
    out.sort_by_key(|a| (a.line, a.rule));
    out
}

/// Token-level `unchecked-index`: a `[` whose previous token can end an
/// expression — a non-keyword identifier, a number (tuple field), a string
/// literal, `)`, `]`, or `?`. Array patterns (`let [a, b] = …`), attribute
/// brackets (`#[…]`), macro brackets (`vec![…]`), and slice/array *types*
/// (`&[u8]`, `[u8; 4]`) never match: their `[` follows a keyword,
/// punctuation, or nothing.
fn unchecked_index_pass(ts: &TokenStream, out: &mut Vec<(Rule, usize, Option<Fix>)>) {
    for (idx, t) in ts.toks.iter().enumerate() {
        if t.kind != TokKind::Open(Delim::Bracket) {
            continue;
        }
        let Some(prev) = ts.prev(idx) else { continue };
        let is_receiver = match prev.kind {
            TokKind::Ident => !is_non_expr_keyword(&prev.text),
            TokKind::Number | TokKind::StrLit => true,
            TokKind::Close(Delim::Paren) | TokKind::Close(Delim::Bracket) => true,
            TokKind::Punct => prev.text == "?",
            _ => false,
        };
        if !is_receiver {
            continue;
        }
        out.push((Rule::UncheckedIndex, t.line, index_fix(ts, idx)));
    }
}

/// The mechanical rewrite for an index expression, when it is safe to
/// propose one: not an assignment target (`x[i] = …`, `x[i] += …`) and not
/// behind an `&mut` borrow of the receiver chain.
fn index_fix(ts: &TokenStream, open_idx: usize) -> Option<Fix> {
    let open = ts.get(open_idx)?;
    let close_idx = open.partner?;
    let close = ts.get(close_idx)?;
    const ASSIGN_OPS: [&str; 11] = [
        "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
    ];
    if ts
        .next(close_idx)
        .is_some_and(|t| t.kind == TokKind::Punct && ASSIGN_OPS.contains(&t.text.as_str()))
    {
        return None;
    }
    // Walk the receiver chain head-ward (`a.b.c[i]` → `a`) and refuse if it
    // is `&mut`-borrowed: `&mut a.b[i]` cannot become `&mut a.b.get(i)`.
    let mut head = open_idx.checked_sub(1)?;
    while head >= 2
        && ts.get(head).is_some_and(|t| t.kind == TokKind::Ident)
        && ts
            .get(head - 1)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == ".")
    {
        head -= 2;
    }
    if ts
        .prev(head)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == "mut")
    {
        return None;
    }
    Some(Fix {
        open: open.start,
        close: close.start,
    })
}

/// Token-level `float-total-order`: any `.partial_cmp(` call. This also
/// catches `sort_by` / `max_by` with a partial comparator, whose closure
/// necessarily contains the `partial_cmp` call.
fn float_total_order_pass(ts: &TokenStream, out: &mut Vec<(Rule, usize, Option<Fix>)>) {
    for (idx, t) in ts.toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && t.text == "partial_cmp"
            && ts
                .prev(idx)
                .is_some_and(|p| p.kind == TokKind::Punct && p.text == ".")
        {
            out.push((Rule::FloatTotalOrder, t.line, None));
        }
    }
}

/// Methods that reorder a shard-result reduction.
const BAD_MERGE: [&str; 8] = [
    "rev",
    "rfold",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// Token-level `exec-merge-order`: find `let <name> = … map_shards(…)`
/// bindings, then flag any method chain on `<name>` that calls a
/// reordering method (`rev`, `rfold`, `sort*`). Left-to-right merges
/// (`for r in results`, `into_iter().flatten()`) stay silent.
fn exec_merge_order_pass(ts: &TokenStream, out: &mut Vec<(Rule, usize, Option<Fix>)>) {
    // Sweep 1: collect shard-result binding names.
    let mut bindings: Vec<&str> = Vec::new();
    let mut awaiting_name = false;
    let mut current_binding: Option<&str> = None;
    for t in &ts.toks {
        match t.kind {
            TokKind::Ident if t.text == "let" => awaiting_name = true,
            TokKind::Ident if awaiting_name && t.text != "mut" => {
                current_binding = Some(t.text.as_str());
                awaiting_name = false;
            }
            TokKind::Ident if t.text == "map_shards" => {
                if let Some(name) = current_binding {
                    if !bindings.contains(&name) {
                        bindings.push(name);
                    }
                }
            }
            TokKind::Punct if t.text == ";" => {
                current_binding = None;
                awaiting_name = false;
            }
            _ => {}
        }
    }
    if bindings.is_empty() {
        return;
    }
    // Sweep 2: follow method chains rooted at a binding occurrence.
    for (idx, t) in ts.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !bindings.contains(&t.text.as_str()) {
            continue;
        }
        let mut j = idx + 1;
        loop {
            match ts.get(j) {
                Some(q) if q.kind == TokKind::Punct && q.text == "?" => j += 1,
                Some(dot) if dot.kind == TokKind::Punct && dot.text == "." => {
                    let Some(m) = ts.get(j + 1) else { break };
                    if m.kind != TokKind::Ident {
                        break;
                    }
                    if BAD_MERGE.contains(&m.text.as_str()) {
                        out.push((Rule::ExecMergeOrder, m.line, None));
                        break;
                    }
                    // Method call: hop over the argument list; field
                    // access: step to the next chain link.
                    match ts.get(j + 2) {
                        Some(p) if p.kind == TokKind::Open(Delim::Paren) => match p.partner {
                            Some(close) => j = close + 1,
                            None => break,
                        },
                        _ => j += 2,
                    }
                }
                _ => break,
            }
        }
    }
}

/// IO methods whose `Result` must not be dropped on durability paths.
const IO_RESULT_METHODS: [&str; 6] = [
    "write",
    "write_all",
    "flush",
    "sync_all",
    "sync_data",
    "set_len",
];

/// Token-level `discarded-io-result`: a statement-position method call to
/// a write/flush/sync method whose `Result` runs straight into `;` with
/// nothing binding it. `?`, a `let` binding, a `return`, and a consuming
/// method chain all count as handled; a bare `.ok()` merely swallows the
/// error, so the statement stays discarded.
fn discarded_io_result_pass(ts: &TokenStream, out: &mut Vec<(Rule, usize, Option<Fix>)>) {
    for (idx, t) in ts.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !IO_RESULT_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        let is_method = ts
            .prev(idx)
            .is_some_and(|p| p.kind == TokKind::Punct && p.text == ".");
        let Some(open) = ts.get(idx + 1) else {
            continue;
        };
        if !is_method || open.kind != TokKind::Open(Delim::Paren) {
            continue;
        }
        let Some(close_idx) = open.partner else {
            continue;
        };
        if io_reaches_semicolon_unconsumed(ts, close_idx) && !io_result_is_bound(ts, idx) {
            out.push((Rule::DiscardedIoResult, t.line, None));
        }
    }
}

/// Forward from the call's `)`: true when the value reaches `;` unused —
/// directly, or through bare `.ok()` hops (which drop the error rather
/// than handle it). Any other continuation (`?`, a consuming method, an
/// operator, a closing delimiter) counts as handled.
fn io_reaches_semicolon_unconsumed(ts: &TokenStream, close_idx: usize) -> bool {
    let mut j = close_idx + 1;
    loop {
        match ts.get(j) {
            Some(semi) if semi.kind == TokKind::Punct && semi.text == ";" => return true,
            Some(dot) if dot.kind == TokKind::Punct && dot.text == "." => {
                let swallows = ts
                    .get(j + 1)
                    .is_some_and(|m| m.kind == TokKind::Ident && m.text == "ok");
                if !swallows {
                    return false;
                }
                match ts.get(j + 2) {
                    Some(p) if p.kind == TokKind::Open(Delim::Paren) => match p.partner {
                        Some(close) => j = close + 1,
                        None => return false,
                    },
                    _ => return false,
                }
            }
            _ => return false,
        }
    }
}

/// Backward from the method name: walk to the head of the receiver chain
/// and inspect what precedes it. Statement position — a `;`, a brace, or
/// the start of the file — leaves the `Result` unbound; anything else
/// (`let … =`, `return`, an argument list, a match arm) consumes it.
fn io_result_is_bound(ts: &TokenStream, method_idx: usize) -> bool {
    // Start before the `.` that makes this a method call.
    let Some(mut p) = method_idx.checked_sub(2) else {
        return false;
    };
    loop {
        let Some(t) = ts.get(p) else { return false };
        match t.kind {
            TokKind::Ident if is_non_expr_keyword(&t.text) => return true,
            TokKind::Ident | TokKind::Number | TokKind::StrLit => {}
            TokKind::Punct if t.text == "." || t.text == "::" || t.text == "?" => {}
            TokKind::Close(Delim::Paren) | TokKind::Close(Delim::Bracket) => {
                // Hop an argument list / subscript back to its opener.
                let Some(open) = t.partner else { return true };
                let Some(before) = open.checked_sub(1) else {
                    return false;
                };
                p = before;
                continue;
            }
            // End of a preceding block, end of a statement, or the first
            // statement of a block: nothing binds the value.
            TokKind::Close(Delim::Brace) | TokKind::Open(Delim::Brace) => return false,
            TokKind::Punct if t.text == ";" => return false,
            // `=`, `(`, `,`, `=>`, operators: the expression is consumed.
            _ => return true,
        }
        let Some(prev) = p.checked_sub(1) else {
            return false;
        };
        p = prev;
    }
}

/// Whether the scrubbed line declares a map or set keyed by an owned
/// `String` (directly, or as the first element of a tuple key):
/// `HashMap<String, _>`, `BTreeMap<(String, ...), _>`, `BTreeSet<String>`,
/// and friends. A `String` *value* (`Map<u32, String>`) never matches.
fn has_string_keyed_map(code: &str) -> bool {
    ["Map<", "Set<"].iter().any(|kind| {
        let mut rest = code;
        while let Some(at) = rest.find(kind) {
            let (_, tail) = rest.split_at(at + kind.len());
            let key = tail.trim_start();
            if key.starts_with("String") || key.starts_with("(String") {
                return true;
            }
            rest = tail;
        }
        false
    })
}

/// Whether the scrubbed line contains `as <numeric-type>`.
fn has_lossy_cast(code: &str) -> bool {
    const NUMERIC: [&str; 12] = [
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "f32", "f64",
    ];
    let mut rest = code;
    while let Some(at) = rest.find(" as ") {
        let (_, tail) = rest.split_at(at + 4);
        let ident: String = tail
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if NUMERIC.contains(&ident.as_str()) {
            return true;
        }
        rest = tail;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::prepare;

    fn all(src: &str) -> Vec<Violation> {
        check_file(&prepare("t.rs", src), &|_| true)
    }

    fn rules_of(v: &[Violation]) -> Vec<Rule> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn panic_family_is_flagged() {
        let v = all("fn f() { panic!(\"x\") }\nfn g() { todo!() }\n");
        assert_eq!(rules_of(&v), vec![Rule::Panic, Rule::Panic]);
    }

    #[test]
    fn unwrap_in_tests_is_exempt() {
        let v = all("#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn hash_order_in_doc_comment_is_exempt() {
        let v = all("//! Uses a HashMap internally? No.\nfn f() {}\n");
        assert!(v.is_empty());
    }

    #[test]
    fn suppression_with_reason_suppresses_same_line() {
        let v = all("use std::collections::HashMap; // ds-lint: allow(hash-order): lookup only\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn suppression_on_previous_line_suppresses() {
        let v = all("// ds-lint: allow(panic): boot-time invariant\nfn f() { panic!(\"x\") }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn multi_rule_suppression_covers_all_named_rules() {
        let v = all("// ds-lint: allow(panic, unwrap): asserted invariant\n\
             fn f() { panic!(\"x\"); y.unwrap(); }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn multi_rule_suppression_with_unknown_member_is_malformed() {
        let v = all("// ds-lint: allow(panic, no-such): reason\n\
             fn f() { panic!(\"x\") }\n");
        assert_eq!(rules_of(&v), vec![Rule::BadSuppression, Rule::Panic]);
    }

    #[test]
    fn suppression_without_reason_is_a_violation() {
        let v = all("let m = std::collections::HashMap::new(); // ds-lint: allow(hash-order):\n");
        assert_eq!(rules_of(&v), vec![Rule::HashOrder, Rule::BadSuppression]);
    }

    #[test]
    fn suppression_with_unknown_rule_is_a_violation() {
        let v = all("fn f() { x.unwrap() } // ds-lint: allow(no-such-rule): because\n");
        assert_eq!(rules_of(&v), vec![Rule::Unwrap, Rule::BadSuppression]);
    }

    #[test]
    fn suppression_only_covers_its_rule() {
        let v = all("// ds-lint: allow(panic): justified\nfn f() { panic!(\"x\"); y.unwrap(); }\n");
        assert_eq!(rules_of(&v), vec![Rule::Unwrap]);
    }

    #[test]
    fn index_expressions_are_flagged() {
        assert_eq!(
            rules_of(&all("fn f() { let x = v[i]; }\n")),
            vec![Rule::UncheckedIndex]
        );
        assert_eq!(
            rules_of(&all("fn f() { m.rows[r * c + 1]; }\n")),
            vec![Rule::UncheckedIndex]
        );
        assert_eq!(
            rules_of(&all("fn f() { f()[0]; }\n")),
            vec![Rule::UncheckedIndex]
        );
        assert_eq!(
            rules_of(&all("fn f() { x.0[i]; }\n")),
            vec![Rule::UncheckedIndex]
        );
    }

    #[test]
    fn patterns_types_macros_are_not_index_expressions() {
        assert!(all("#[derive(Debug)]\nfn f(v: &[u8]) {}\n").is_empty());
        assert!(all("fn f() { let v = vec![1, 2]; }\n").is_empty());
        assert!(all("fn f() { let a = [0u8; 4]; }\n").is_empty());
        assert!(all("fn f(xs: &[u8]) { let [a, b] = xs; }\n").is_empty());
        assert!(all("fn f(x: T) { if let [a] = x {} }\n").is_empty());
        assert!(all("fn f(x: T) { match x { [a, ..] => {} } }\n").is_empty());
    }

    #[test]
    fn multi_line_index_is_flagged_once() {
        let v = all("fn f() {\n    let x = long_name\n        [i];\n}\n");
        assert_eq!(rules_of(&v), vec![Rule::UncheckedIndex]);
        assert_eq!(v.iter().map(|x| x.line).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn index_fix_spans_point_at_brackets() {
        let src = "fn f() { let x = v[i]; }\n";
        let v = all(src);
        let fix = v.first().and_then(|x| x.fix).expect("fixable");
        assert_eq!(&src[fix.open..fix.open + 1], "[");
        assert_eq!(&src[fix.close..fix.close + 1], "]");
    }

    #[test]
    fn assignment_lhs_and_mut_borrow_have_no_fix() {
        let v = all("fn f() { v[i] = 3; }\n");
        assert_eq!(rules_of(&v), vec![Rule::UncheckedIndex]);
        assert!(v.first().is_some_and(|x| x.fix.is_none()));
        let v = all("fn f() { g(&mut v[i]); }\n");
        assert_eq!(rules_of(&v), vec![Rule::UncheckedIndex]);
        assert!(v.first().is_some_and(|x| x.fix.is_none()));
        let v = all("fn f() { v[i] += 1.0; }\n");
        assert!(v.first().is_some_and(|x| x.fix.is_none()));
    }

    #[test]
    fn float_total_order_flags_partial_cmp() {
        let v = all("fn f() { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n");
        assert!(rules_of(&v).contains(&Rule::FloatTotalOrder), "{v:?}");
        let v = all("fn f() { xs.sort_by(|a, b| a.total_cmp(b)); }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn exec_merge_order_flags_reversed_reduction() {
        let v = all("fn f() { let shards = pool.map_shards(n, |r| work(r));\n\
             let out = shards.into_iter().rev().flatten().collect(); }\n");
        assert_eq!(rules_of(&v), vec![Rule::ExecMergeOrder]);
        let v = all("fn f() { let shards = pool.map_shards(n, |r| work(r));\n\
             let out = shards.into_iter().flatten().collect(); }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn exec_merge_order_flags_sorted_shards() {
        let v = all(
            "fn f() { let mut parts = pool.map_shards(n, |r| work(r));\n\
             parts.sort();\nmerge(parts); }\n",
        );
        assert_eq!(rules_of(&v), vec![Rule::ExecMergeOrder]);
    }

    #[test]
    fn lossy_cast_detection() {
        assert!(has_lossy_cast("let x = tokens as f64;"));
        assert!(has_lossy_cast("(n as u32)"));
        assert!(!has_lossy_cast("let x = y as Box<dyn Error>;"));
        assert!(!has_lossy_cast("measured"));
    }

    #[test]
    fn string_keyed_map_heuristic() {
        assert!(has_string_keyed_map(
            "seen: BTreeSet<(String, usize, bool)>,"
        ));
        assert!(has_string_keyed_map("m: HashMap<String, u32>,"));
        assert!(has_string_keyed_map(
            "x: BTreeMap<(String, bool), Outcome>,"
        ));
        assert!(!has_string_keyed_map("m: BTreeMap<u32, String>,"));
        assert!(!has_string_keyed_map("s: BTreeSet<(u32, usize, bool)>,"));
        assert!(!has_string_keyed_map("let s = String::new();"));
    }

    #[test]
    fn string_keyed_map_is_flagged_and_suppressible() {
        let v = all("struct S { m: std::collections::BTreeMap<String, u32> }\n");
        assert_eq!(rules_of(&v), vec![Rule::StringKeyedMap]);
        let v = all("// ds-lint: allow(string-keyed-map): cold config path\n\
             struct S { m: std::collections::BTreeMap<String, u32> }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn wall_clock_and_discarded_result() {
        let v = all("fn f() { let t = std::time::Instant::now(); let _ = call(); }\n");
        assert_eq!(rules_of(&v), vec![Rule::WallClock, Rule::DiscardedResult]);
    }

    #[test]
    fn discarded_io_result_flags_statement_position_calls() {
        let v = all("fn f(w: &mut W) { w.flush(); }\n");
        assert_eq!(rules_of(&v), vec![Rule::DiscardedIoResult]);
        let v = all("fn f(&mut self) { self.file.sync_all(); }\n");
        assert_eq!(rules_of(&v), vec![Rule::DiscardedIoResult]);
        let v = all("fn g(w: &mut W, buf: &Buf) { w.write_all(buf.bytes()); }\n");
        assert_eq!(rules_of(&v), vec![Rule::DiscardedIoResult]);
    }

    #[test]
    fn discarded_io_result_flags_ok_swallow() {
        let v = all("fn f(w: &mut W) { w.flush().ok(); }\n");
        assert_eq!(rules_of(&v), vec![Rule::DiscardedIoResult]);
        // Across a line break, too.
        let v = all("fn f(w: &mut W) {\n    w.sync_data()\n        .ok();\n}\n");
        assert_eq!(rules_of(&v), vec![Rule::DiscardedIoResult]);
    }

    #[test]
    fn handled_io_results_are_silent() {
        assert!(all("fn f(w: &mut W) -> R { w.flush()?; Ok(()) }\n").is_empty());
        assert!(all("fn f(w: &mut W) -> R { let n = w.write(b)?; Ok(n) }\n").is_empty());
        assert!(all("fn f(w: &mut W) -> R { return w.flush(); }\n").is_empty());
        assert!(all("fn f(w: &mut W) -> R { w.flush().map_err(tag)?; Ok(()) }\n").is_empty());
        assert!(all("fn f(w: &mut W) -> bool { w.flush().is_ok() }\n").is_empty());
        assert!(all("fn f(w: &mut W) { if w.sync_all().is_err() { log(); } }\n").is_empty());
        // A free function or macro named `write` is not a method call.
        assert!(all("fn f() { write(fd, buf); }\n").is_empty());
    }

    #[test]
    fn let_underscore_io_is_the_generic_discard_rule() {
        // `let _ =` stays discarded-result's business; no double report.
        let v = all("fn f(w: &mut W) { let _ = w.flush(); }\n");
        assert_eq!(rules_of(&v), vec![Rule::DiscardedResult]);
    }

    #[test]
    fn discarded_io_result_suppression_works() {
        let v = all(
            "// ds-lint: allow(discarded-io-result): best-effort readahead\n\
             fn f(w: &mut W) { w.flush(); }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn raw_thread_is_flagged() {
        let v =
            all("fn f() { std::thread::spawn(|| {}); }\nfn g() { std::thread::scope(|s| {}); }\n");
        assert_eq!(rules_of(&v), vec![Rule::RawThread, Rule::RawThread]);
    }

    #[test]
    fn raw_thread_suppression_works() {
        let v = all("// ds-lint: allow(raw-thread): pool internals\nfn f() { std::thread::scope(|s| {}); }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn disabled_rules_do_not_fire() {
        let f = prepare("t.rs", "fn f() { panic!(\"x\") }\n");
        let v = check_file(&f, &|r| r != Rule::Panic);
        assert!(v.is_empty());
    }
}
