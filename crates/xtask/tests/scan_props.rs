//! Property tests for the scanner core: `prepare`/`scrub` must accept
//! arbitrary input without panicking, and the scrubbed code/comment
//! buffers must stay byte-length-identical to the input — the token
//! layer's byte offsets are only valid under that invariant.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt_xtask::scan::{prepare, scrub};
use datasculpt_xtask::tokens::TokenStream;
use proptest::prelude::*;

/// The scrubber's own state-machine triggers: unterminated strings,
/// nested raw-string fences, stray escapes, half-open comments.
const FRAGMENTS: [&str; 16] = [
    "\"",
    "'",
    "//",
    "/*",
    "*/",
    "r#\"",
    "\"#",
    "r##\"",
    "\\",
    "\n",
    "[",
    "]",
    "#[cfg(test)]",
    "ds-lint: allow(",
    "b\"",
    "xs 0 ",
];

proptest! {
    #[test]
    fn scrub_preserves_byte_length_on_any_text(src in "\\PC{0,300}") {
        let (code, comment) = scrub(&src);
        prop_assert_eq!(code.len(), src.len());
        prop_assert_eq!(comment.len(), src.len());
    }

    #[test]
    fn scrub_preserves_byte_length_on_lossy_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        // Arbitrary bytes arrive via the same lossy decoding the file
        // loader would apply.
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let (code, comment) = scrub(&src);
        prop_assert_eq!(code.len(), src.len());
        prop_assert_eq!(comment.len(), src.len());
    }

    #[test]
    fn prepare_never_panics_on_adversarial_fragments(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..32),
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let file = prepare("t.rs", &src);
        prop_assert_eq!(file.code.len(), src.len());
        prop_assert_eq!(file.lines.len(), src.lines().count());
        // The token layer downstream must tolerate whatever survives,
        // with spans that stay inside the input.
        let ts = TokenStream::lex(&file.code);
        prop_assert!(ts.toks.iter().all(|t| t.start < t.end && t.end <= src.len()));
    }

    #[test]
    fn prepare_never_panics_on_any_text(src in "\\PC{0,200}") {
        let file = prepare("t.rs", &src);
        prop_assert_eq!(file.code.len(), src.len());
    }
}
