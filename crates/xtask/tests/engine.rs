//! End-to-end engine tests over the violation fixtures.
//!
//! The acceptance bar for PR 2: the engine must flag every planted
//! violation in `fixtures/violations.rs`, honour every well-formed
//! suppression in `fixtures/suppressed.rs` (and flag the malformed ones),
//! and stay silent on `fixtures/clean.rs`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt_xtask::config::LintConfig;
use datasculpt_xtask::lint_sources;
use datasculpt_xtask::rules::Rule;

const VIOLATIONS: &str = include_str!("../fixtures/violations.rs");
const SUPPRESSED: &str = include_str!("../fixtures/suppressed.rs");
const CLEAN: &str = include_str!("../fixtures/clean.rs");
const FIXABLE: &str = include_str!("../fixtures/fixable.rs");

fn count(outcome: &datasculpt_xtask::LintOutcome, rule: Rule) -> usize {
    outcome.violations.iter().filter(|v| v.rule == rule).count()
}

#[test]
fn violations_fixture_trips_every_rule_family() {
    let cfg = LintConfig::default();
    let out = lint_sources([("crates/fix/src/violations.rs", VIOLATIONS)], &cfg);
    assert_eq!(count(&out, Rule::HashOrder), 2, "{:?}", out.violations);
    assert_eq!(count(&out, Rule::Panic), 1);
    assert_eq!(count(&out, Rule::Unwrap), 2);
    assert_eq!(count(&out, Rule::UncheckedIndex), 1);
    assert_eq!(count(&out, Rule::FloatTotalOrder), 1);
    assert_eq!(count(&out, Rule::ExecMergeOrder), 1);
    assert_eq!(count(&out, Rule::WallClock), 1);
    assert_eq!(count(&out, Rule::DiscardedResult), 1);
    assert_eq!(count(&out, Rule::DiscardedIoResult), 1);
    assert_eq!(count(&out, Rule::LossyCast), 1);
    assert_eq!(count(&out, Rule::StringKeyedMap), 1);
    assert_eq!(count(&out, Rule::BadSuppression), 0);
    assert_eq!(out.violations.len(), 13, "{:?}", out.violations);
    assert!(!out.is_clean());
}

#[test]
fn suppressed_fixture_honours_valid_annotations_and_flags_bad_ones() {
    let cfg = LintConfig::default();
    let out = lint_sources([("crates/fix/src/suppressed.rs", SUPPRESSED)], &cfg);
    // Valid suppressions (hash-order import, panic, trailing unwrap,
    // best-effort flush) are silent; the reason-less and unknown-rule
    // annotations each produce a bad-suppression AND leave their
    // underlying violation live.
    assert_eq!(count(&out, Rule::BadSuppression), 2, "{:?}", out.violations);
    assert_eq!(count(&out, Rule::HashOrder), 1);
    assert_eq!(count(&out, Rule::Unwrap), 1);
    assert_eq!(count(&out, Rule::Panic), 0);
    assert_eq!(out.violations.len(), 4, "{:?}", out.violations);
}

#[test]
fn clean_fixture_is_clean() {
    let cfg = LintConfig::default();
    let out = lint_sources([("crates/fix/src/clean.rs", CLEAN)], &cfg);
    assert!(out.is_clean(), "{:?}", out.violations);
}

#[test]
fn path_scoping_can_exempt_the_fixture() {
    let cfg = LintConfig::parse(
        "[rule.hash-order]\npaths = [\"crates/other\"]\n\
         [rule.panic]\nenabled = false\n\
         [rule.unwrap]\nenabled = false\n\
         [rule.unchecked-index]\nenabled = false\n\
         [rule.float-total-order]\nenabled = false\n\
         [rule.exec-merge-order]\nenabled = false\n\
         [rule.wall-clock]\nenabled = false\n\
         [rule.discarded-result]\nenabled = false\n\
         [rule.discarded-io-result]\nenabled = false\n\
         [rule.lossy-cast]\nenabled = false\n\
         [rule.string-keyed-map]\nenabled = false\n",
    )
    .expect("config parses");
    let out = lint_sources([("crates/fix/src/violations.rs", VIOLATIONS)], &cfg);
    assert!(out.is_clean(), "{:?}", out.violations);
}

#[test]
fn json_report_round_trips_counts() {
    let cfg = LintConfig::default();
    let out = lint_sources([("crates/fix/src/violations.rs", VIOLATIONS)], &cfg);
    let summary = datasculpt_xtask::report::Summary::of(&out.violations, out.files_scanned);
    let json = datasculpt_xtask::report::render_json(&out.violations, &summary);
    assert!(json.contains("\"hash-order\":2"));
    assert!(json.contains("\"files_scanned\":1"));
    assert!(json.contains("\"ok\":false"));
}

#[test]
fn clean_fixture_has_non_firing_cases_for_token_rules() {
    // The clean fixture deliberately contains a `total_cmp` sort, a
    // left-to-right `map_shards` merge, slice patterns, and `.get()`
    // access — the non-firing counterparts of the token-stream rules.
    assert!(CLEAN.contains("total_cmp"));
    assert!(CLEAN.contains("map_shards"));
    assert!(CLEAN.contains("let [a, b]"));
    let out = lint_sources([("crates/fix/src/clean.rs", CLEAN)], &LintConfig::default());
    assert!(out.is_clean(), "{:?}", out.violations);
}

#[test]
fn multi_rule_suppression_in_fixture_is_honoured() {
    let out = lint_sources(
        [("crates/fix/src/suppressed.rs", SUPPRESSED)],
        &LintConfig::default(),
    );
    // `multi()` carries allow(unwrap, unchecked-index) over a line with
    // both: neither may be reported, and the annotation is well-formed.
    let in_multi: Vec<_> = out
        .violations
        .iter()
        .filter(|v| v.snippet.contains("table[0]"))
        .collect();
    assert!(in_multi.is_empty(), "{in_multi:?}");
}

#[test]
fn fix_round_trips_to_zero_findings() {
    let cfg = LintConfig::default();
    let out = lint_sources([("crates/fix/src/fixable.rs", FIXABLE)], &cfg);
    assert!(!out.violations.is_empty());
    assert!(
        out.violations
            .iter()
            .all(|v| v.rule == Rule::UncheckedIndex && v.fix.is_some()),
        "{:?}",
        out.violations
    );
    let (fixed, n) = datasculpt_xtask::fix::apply_fixes(FIXABLE, &out.violations);
    assert_eq!(n, out.violations.len());
    let again = lint_sources([("crates/fix/src/fixable.rs", fixed.as_str())], &cfg);
    assert!(again.is_clean(), "{:?}\n{fixed}", again.violations);
}

#[test]
fn dead_config_path_is_an_error_against_the_fixture_set() {
    let cfg = LintConfig::parse("[rule.panic]\npaths = [\"crates/typo/src\"]\n").unwrap();
    let err = cfg
        .validate_against(["crates/fix/src/violations.rs"])
        .unwrap_err();
    assert!(err.contains("crates/typo/src"), "{err}");
    let ok = LintConfig::parse("[rule.panic]\npaths = [\"crates/fix/src\"]\n").unwrap();
    assert!(ok
        .validate_against(["crates/fix/src/violations.rs"])
        .is_ok());
}

#[test]
fn missing_reason_is_rejected() {
    let cfg = LintConfig::default();
    let src =
        "fn f(x: Option<u32>) -> u32 {\n    // ds-lint: allow(unwrap):   \n    x.unwrap()\n}\n";
    let out = lint_sources([("crates/fix/src/a.rs", src)], &cfg);
    assert_eq!(count(&out, Rule::BadSuppression), 1);
    assert_eq!(count(&out, Rule::Unwrap), 1, "violation stays live");
}

#[test]
fn unknown_rule_name_is_rejected() {
    let cfg = LintConfig::default();
    let src = "// ds-lint: allow(determinizm): typo\nuse std::collections::HashMap;\n";
    let out = lint_sources([("crates/fix/src/b.rs", src)], &cfg);
    assert_eq!(count(&out, Rule::BadSuppression), 1);
    assert_eq!(count(&out, Rule::HashOrder), 1);
}
