//! Fixture: violation-free library code. The engine must report nothing,
//! even though comments and strings mention HashMap, panic! and unwrap().
//! NOT compiled — scanned as text by the engine's own test suite.

use std::collections::BTreeMap;

/// Doc comments may say HashMap or panic! freely.
/// A map with a String *value* (key is a symbol) is also fine.
pub fn lookup(map: &BTreeMap<u32, String>, key: u32) -> Option<&String> {
    let banner = "call .unwrap() and panic! are fine inside string literals";
    let _unused_named_binding = banner.len(); // named, so not discarded-result
    map.get(&key)
}

pub fn safe_get(v: &[u32], i: usize) -> Option<u32> {
    v.get(i).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_do_anything() {
        let mut m = std::collections::HashMap::new();
        m.insert("k".to_string(), 1u32);
        for (k, v) in m.iter() {
            assert_eq!(v, m.get(k).unwrap());
        }
    }
}

pub fn total_orders(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

pub fn merges_in_order(pool: &Pool, n: usize) -> Vec<u32> {
    let shards = pool.map_shards(n, work);
    let mut merged = Vec::new();
    for shard in shards {
        merged.extend(shard);
    }
    merged
}

pub fn flushes_handled(w: &mut Writer) -> Result<(), Error> {
    w.write_all(payload())?;
    w.flush()
}

pub fn destructures(xs: &[u32; 2]) -> u32 {
    let [a, b] = *xs;
    a + b
}

pub fn matches_slices(xs: &[u32]) -> u32 {
    match xs {
        [first, ..] => *first,
        [] => 0,
    }
}
