//! Fixture: suppression annotations — four valid, two malformed.
//! NOT compiled — scanned as text by the engine's own test suite.

use std::collections::HashMap; // ds-lint: allow(hash-order): lookup-only interning table, never iterated

pub fn checked() {
    // ds-lint: allow(panic): capacity is validated at construction
    panic!("unreachable by construction");
}

pub fn trailing(x: Option<u32>) -> u32 {
    x.expect("validated upstream") // ds-lint: allow(unwrap): input validated two lines up
}

pub fn missing_reason() {
    let m: HashMap<u32, u32> = HashMap::new(); // ds-lint: allow(hash-order):
    drop(m);
}

pub fn unknown_rule(x: Option<u32>) -> u32 {
    x.unwrap() // ds-lint: allow(no-such-rule): confidently wrong
}

pub fn best_effort(w: &mut Writer) {
    w.flush().ok(); // ds-lint: allow(discarded-io-result): warm-up hint; losing it costs a reread, not data
}

pub fn multi(x: Option<u32>, table: &[u32]) -> u32 {
    // ds-lint: allow(unwrap, unchecked-index): caller guarantees Some and a non-empty table
    x.unwrap() + table[0]
}
