//! Fixture: only *fixable* unchecked-index sites. `--fix` must rewrite
//! every one of them, and re-linting the rewritten text must be clean.
//! NOT compiled — scanned as text by the engine's own test suite.

pub fn reads(v: &[f64], i: usize) -> f64 {
    let a = v[i];
    let b = v[i + 1];
    a + b
}

pub fn field_chain(m: &Matrix, r: usize) -> f64 {
    m.data[r]
}

pub fn wrapped(xs: &[u32]) -> u32 {
    xs[0] + xs[xs.len() - 1]
}

pub fn across_lines(long_binding_name: &[u32], index: usize) -> u32 {
    long_binding_name
        [index]
}
