//! Fixture: one violation per rule family, on library paths.
//! NOT compiled — scanned as text by the engine's own test suite.

use std::collections::HashMap; // hash-order
use std::collections::HashSet; // hash-order

pub fn panics() {
    panic!("boom"); // panic
}

pub fn unwraps(x: Option<u32>) -> u32 {
    x.unwrap() // unwrap
}

pub fn expects(x: Option<u32>) -> u32 {
    x.expect("present") // unwrap
}

pub fn indexes(v: &[u32], i: usize) -> u32 {
    v[i] // unchecked-index
}

pub fn clocks() {
    let _t = std::time::Instant::now(); // wall-clock
}

pub fn discards() {
    let _ = fallible(); // discarded-result
}

pub fn casts(tokens: u64) -> f64 {
    tokens as f64 // lossy-cast
}

pub fn drops_io(log: &mut Writer) {
    log.flush(); // discarded-io-result
}

pub struct Memo {
    pub seen: std::collections::BTreeMap<String, u32>, // string-keyed-map
}

fn fallible() -> Result<(), ()> {
    Ok(())
}

#[cfg(test)]
mod tests {
    // Everything is legal in tests: none of these may be reported.
    #[test]
    fn exempt() {
        let m = std::collections::HashMap::<u32, u32>::new();
        assert!(m.get(&0).is_none());
        let v = vec![1, 2];
        assert_eq!(v[0], Some(1).unwrap());
    }
}

pub fn partial_orders(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)); // float-total-order
}

pub fn merges_backwards(pool: &Pool, n: usize) -> Vec<u32> {
    let shards = pool.map_shards(n, work);
    shards.into_iter().rev().flatten().collect() // exec-merge-order
}
