//! Cross-system comparisons: the structural relationships of Table 2 and
//! Figures 3–4 must hold on down-scaled data.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::core::eval::{evaluate_matrix, lf_stats_from_matrix};
use datasculpt::prelude::*;

fn dataset() -> TextDataset {
    DatasetName::Youtube.load_scaled(17, 0.15)
}

fn run_datasculpt(dataset: &TextDataset, seed: u64) -> (LfSet, UsageLedger) {
    let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, dataset.generative.clone(), seed);
    let mut config = DataSculptConfig::sc(seed);
    config.num_queries = 40;
    let run = DataSculpt::new(dataset, config)
        .run(&mut llm)
        .expect("the simulated model does not fail");
    (run.lf_set, run.ledger)
}

#[test]
fn datasculpt_builds_larger_lf_sets_than_baselines() {
    let d = dataset();
    let (lf_set, _) = run_datasculpt(&d, 3);
    let wrench = wrench_expert_lfs(&d, wrench_lf_count(DatasetName::Youtube));
    // Table 2: DataSculpt's LF sets are an order of magnitude larger.
    assert!(
        lf_set.len() > 3 * wrench.len(),
        "datasculpt {} vs wrench {}",
        lf_set.len(),
        wrench.len()
    );
}

#[test]
fn datasculpt_is_orders_of_magnitude_cheaper_than_promptedlf() {
    let d = dataset();
    let (_, sculpt_ledger) = run_datasculpt(&d, 5);
    let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 5);
    let prompted = baselines_promptedlf(&d, &mut llm);
    let ratio =
        prompted.ledger.total_usage().total() as f64 / sculpt_ledger.total_usage().total() as f64;
    // At full scale the paper reports ~4000x; on a 15% slice we still
    // expect a large gap.
    assert!(ratio > 5.0, "cost ratio only {ratio}");
}

fn baselines_promptedlf(
    d: &TextDataset,
    llm: &mut SimulatedLlm,
) -> datasculpt::baselines::PromptedLfResult {
    promptedlf_run(d, llm)
}

#[test]
fn promptedlf_has_best_lf_accuracy_scriptorium_worst() {
    let d = dataset();
    let labels = d.train.labels_opt();

    let (lf_set, _) = run_datasculpt(&d, 7);
    let sculpt_acc = lf_stats_from_matrix(lf_set.train_matrix(), Some(&labels))
        .lf_accuracy
        .expect("labels");

    let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 7);
    let prompted = promptedlf_run(&d, &mut llm);
    let prompted_acc = prompted
        .lf_stats(Some(&labels))
        .lf_accuracy
        .expect("labels");

    let mut llm2 = SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 7);
    let script = scriptorium_run(&d, &mut llm2, 9).expect("the simulated model does not fail");
    let mut script_set = LfSet::new(&d, FilterConfig::validity_only());
    for lf in script.lfs {
        script_set.try_add(lf);
    }
    let script_acc = lf_stats_from_matrix(script_set.train_matrix(), Some(&labels))
        .lf_accuracy
        .expect("labels");

    // Table 2 ordering: PromptedLF ≥ DataSculpt > ScriptoriumWS.
    assert!(
        prompted_acc + 0.05 > sculpt_acc,
        "prompted {prompted_acc} vs datasculpt {sculpt_acc}"
    );
    assert!(
        sculpt_acc > script_acc - 0.02,
        "datasculpt {sculpt_acc} vs scriptorium {script_acc}"
    );
}

#[test]
fn all_four_systems_reach_usable_end_models() {
    let d = dataset();
    let cfg = EvalConfig::default();

    let (lf_set, _) = run_datasculpt(&d, 11);
    let sculpt = evaluate_lf_set(&d, &lf_set, &cfg);

    let mut wrench_set = LfSet::new(&d, FilterConfig::validity_only());
    for lf in wrench_expert_lfs(&d, 10) {
        wrench_set.try_add(lf);
    }
    let wrench = evaluate_lf_set(&d, &wrench_set, &cfg);

    let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 11);
    let script = scriptorium_run(&d, &mut llm, 9).expect("the simulated model does not fail");
    let mut script_set = LfSet::new(&d, FilterConfig::validity_only());
    for lf in script.lfs {
        script_set.try_add(lf);
    }
    let scriptorium = evaluate_lf_set(&d, &script_set, &cfg);

    let mut llm2 = SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 11);
    let prompted = promptedlf_run(&d, &mut llm2);
    let prompted_eval = evaluate_matrix(&d, &prompted.matrix, &cfg);

    for (name, metric) in [
        ("datasculpt", sculpt.end_metric),
        ("wrench", wrench.end_metric),
        ("scriptorium", scriptorium.end_metric),
        ("promptedlf", prompted_eval.end_metric),
    ] {
        assert!(metric > 0.55, "{name} end metric {metric}");
    }
}

#[test]
fn scriptorium_coverage_beats_datasculpt_per_lf() {
    let d = dataset();
    let labels = d.train.labels_opt();
    let (lf_set, _) = run_datasculpt(&d, 13);
    let sculpt_cov = lf_stats_from_matrix(lf_set.train_matrix(), Some(&labels)).lf_coverage;

    let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 13);
    let script = scriptorium_run(&d, &mut llm, 9).expect("the simulated model does not fail");
    let mut script_set = LfSet::new(&d, FilterConfig::validity_only());
    for lf in script.lfs {
        script_set.try_add(lf);
    }
    let script_cov = lf_stats_from_matrix(script_set.train_matrix(), Some(&labels)).lf_coverage;
    // Table 2: broad task-level LFs cover far more per LF than
    // instance-mined keywords.
    assert!(
        script_cov > sculpt_cov,
        "scriptorium {script_cov} vs datasculpt {sculpt_cov}"
    );
}
