//! Checkpoint schema evolution: golden fixture files under
//! `tests/fixtures/` pin the v1 on-disk layout, and loading a log from an
//! unknown schema version or a different run configuration must fail with
//! the matching typed [`CheckpointError`] — never a guess.
//!
//! Regenerate the fixtures after an *intentional* schema change with:
//! `DS_REGEN_FIXTURES=1 cargo test --test checkpoint_schema` (then update
//! `CHECKPOINT_VERSION` and `docs/persistence.md`).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::core::IterationCheckpoint;
use datasculpt::prelude::*;
use datasculpt::store::checkpoint::{encode_header, encode_iteration, CheckpointHeader};
use datasculpt::store::framing::encode_record;
use datasculpt::store::CHECKPOINT_VERSION;
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/fixtures"))
}

/// The fingerprint all fixtures were written against.
fn fixture_fingerprint() -> RunFingerprint {
    let mut config = DataSculptConfig::cot(9);
    config.num_queries = 8;
    RunFingerprint {
        dataset: "youtube".into(),
        dataset_seed: 21,
        scale_bits: 0.1f64.to_bits(),
        model: ModelId::Gpt35Turbo.api_name().into(),
        llm_seed: 13,
        config,
    }
}

fn fixture_iterations() -> Vec<IterationCheckpoint> {
    vec![
        IterationCheckpoint {
            iter: 0,
            state_digest: 0x1122_3344_5566_7788,
            lfs: 2,
            calls: 1,
            cost_nanousd: 123_456,
            failed: false,
        },
        IterationCheckpoint {
            iter: 1,
            state_digest: 0x99aa_bbcc_ddee_ff00,
            lfs: 3,
            calls: 2,
            cost_nanousd: 456_789,
            failed: true,
        },
    ]
}

fn header(version: u64, fingerprint: u64) -> CheckpointHeader {
    CheckpointHeader {
        version,
        fingerprint,
        dataset: "youtube".into(),
        model: "gpt-3.5-turbo-0613".into(),
        queries: 8,
    }
}

/// The exact bytes each committed fixture must hold.
fn fixture_bytes() -> Vec<(&'static str, Vec<u8>)> {
    let fp = fixture_fingerprint().digest();
    let valid: Vec<u8> = std::iter::once(encode_record(&encode_header(&header(
        CHECKPOINT_VERSION,
        fp,
    ))))
    .chain(
        fixture_iterations()
            .iter()
            .map(|s| encode_record(&encode_iteration(s))),
    )
    .flatten()
    .collect();
    let unknown_version = encode_record(&encode_header(&header(99, fp)));
    let other_config = encode_record(&encode_header(&header(
        CHECKPOINT_VERSION,
        fp ^ 0xdead_beef,
    )));
    let missing_header = encode_record(&encode_iteration(&fixture_iterations()[0]));
    vec![
        ("checkpoint_v1_valid.bin", valid),
        ("checkpoint_v99_unknown.bin", unknown_version),
        ("checkpoint_other_config.bin", other_config),
        ("checkpoint_missing_header.bin", missing_header),
    ]
}

/// With `DS_REGEN_FIXTURES=1`, (re)write the fixture files; otherwise
/// assert the committed bytes still match what this build would write —
/// any unintentional layout change fails here first.
#[test]
fn fixtures_match_this_builds_encoding() {
    let dir = fixtures_dir();
    let regen = std::env::var("DS_REGEN_FIXTURES").is_ok();
    if regen {
        std::fs::create_dir_all(&dir).unwrap();
    }
    for (name, bytes) in fixture_bytes() {
        let path = dir.join(name);
        if regen {
            std::fs::write(&path, &bytes).unwrap();
        }
        let on_disk = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("fixture {name} unreadable ({e}); see module docs"));
        assert_eq!(on_disk, bytes, "fixture {name} drifted from the v1 layout");
    }
}

#[test]
fn valid_v1_fixture_loads_and_verifies() {
    let log = CheckpointLog::load(&fixtures_dir().join("checkpoint_v1_valid.bin"))
        .unwrap()
        .expect("fixture holds a checkpoint");
    assert_eq!(log.header.version, CHECKPOINT_VERSION);
    assert_eq!(log.header.dataset, "youtube");
    assert_eq!(log.header.queries, 8);
    assert_eq!(log.iterations, fixture_iterations());
    log.verify(&fixture_fingerprint()).unwrap();
}

#[test]
fn unknown_version_is_a_typed_error() {
    let err = CheckpointLog::load(&fixtures_dir().join("checkpoint_v99_unknown.bin")).unwrap_err();
    assert_eq!(
        err,
        CheckpointError::UnknownVersion {
            found: 99,
            supported: CHECKPOINT_VERSION,
        }
    );
    // The message tells the operator what refused and why.
    let text = err.to_string();
    assert!(
        text.contains("99") && text.contains("not supported"),
        "{text}"
    );
}

#[test]
fn mismatched_config_is_a_typed_error() {
    let log = CheckpointLog::load(&fixtures_dir().join("checkpoint_other_config.bin"))
        .unwrap()
        .expect("loads fine; only verify rejects it");
    let fp = fixture_fingerprint();
    let err = log.verify(&fp).unwrap_err();
    assert_eq!(
        err,
        CheckpointError::ConfigMismatch {
            expected: fp.digest(),
            found: fp.digest() ^ 0xdead_beef,
        }
    );

    // Any drifted config field produces the same typed refusal end to end:
    // resuming a directory with a different temperature must not start.
    let mut drifted = fixture_fingerprint();
    drifted.config.temperature = 0.9;
    let valid = CheckpointLog::load(&fixtures_dir().join("checkpoint_v1_valid.bin"))
        .unwrap()
        .unwrap();
    assert!(matches!(
        valid.verify(&drifted),
        Err(CheckpointError::ConfigMismatch { .. })
    ));
}

#[test]
fn missing_header_is_a_typed_error() {
    let err =
        CheckpointLog::load(&fixtures_dir().join("checkpoint_missing_header.bin")).unwrap_err();
    assert_eq!(err, CheckpointError::MissingHeader);
}

#[test]
fn absent_log_is_a_fresh_start_not_an_error() {
    let absent = fixtures_dir().join("no_such_checkpoint.bin");
    assert_eq!(CheckpointLog::load(&absent).unwrap(), None);
}
