//! Trace-analytics contract (PR 9): the span-tree attribution must sum
//! exactly (integer nano-USD) to the run's ledger, `trace diff` must be
//! empty across thread counts for a same-seed run, the live
//! [`SpanTreeBuilder`] sink must agree with post-hoc trace parsing, and
//! `SharedObserver` fan-in from exec-pool worker threads must preserve
//! counter totals exactly.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::obs::report;
use datasculpt::obs::Record;
use datasculpt::prelude::*;
use std::sync::{Arc, Mutex};

fn config(threads: usize) -> DataSculptConfig {
    let mut config = DataSculptConfig::base(7);
    config.num_queries = 6;
    config.revise_rejected = true;
    config.threads = threads;
    config
}

fn dataset() -> TextDataset {
    DatasetName::Youtube.load_scaled(7, 0.05)
}

/// An in-memory `Write` target so a `JsonlTraceSink` boxed into a tracer
/// can still be read back afterwards.
#[derive(Clone, Default)]
struct Buf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for Buf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A `TraceSink` adapter exposing a shared `SpanTreeBuilder` for the
/// live-vs-parsed comparison.
#[derive(Clone)]
struct LiveTree(Arc<Mutex<SpanTreeBuilder>>);

impl TraceSink for LiveTree {
    fn record(&mut self, record: &Record<'_>) {
        self.0.lock().unwrap().record(record);
    }
}

/// One observed same-seed run at `threads`: returns the trace text, the
/// live-built analysis, and the run result.
fn traced_run(threads: usize) -> (String, TraceAnalysis, RunResult) {
    let d = dataset();
    let buf = Buf::default();
    let live = LiveTree(Arc::new(Mutex::new(SpanTreeBuilder::new())));
    let mut tracer = Tracer::new(Box::new(ManualClock::new(100)));
    tracer.add_sink(Box::new(JsonlTraceSink::new(buf.clone())));
    tracer.add_sink(Box::new(live.clone()));
    let shared = SharedObserver::new(tracer);

    let sim = SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 7)
        .with_pool(Pool::new(threads));
    let retry = RetryModel::new(sim, 2).with_observer(shared.clone());
    let mut llm = CachedModel::new(retry).with_observer(shared.clone());
    let mut obs = shared.clone();
    let run = DataSculpt::new(&d, config(threads))
        .run_observed(&mut llm, &mut obs)
        .unwrap();
    obs.finish().unwrap();

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let analysis = live.0.lock().unwrap().clone().finish();
    (text, analysis, run)
}

fn fixtures_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/fixtures"))
}

/// Golden `trace analyze --json` fixture: a committed deterministic trace
/// (ManualClock, fixed seeds) plus the exact JSON report it must render.
/// `scripts/check.sh` re-checks the same pair through the real CLI.
/// Regenerate after an *intentional* report or schema change with:
/// `DS_REGEN_FIXTURES=1 cargo test --test trace_analytics` (then update
/// `docs/trace-schema.md` if the wire format moved).
#[test]
fn golden_analyze_fixture_is_stable() {
    let dir = fixtures_dir();
    let trace_path = dir.join("trace_small.jsonl");
    let golden_path = dir.join("trace_small_analyze.json");
    let (text, _, _) = traced_run(1);
    let analysis = TraceAnalysis::from_trace(&text).unwrap();
    // Trailing newline matches what `trace analyze --json` prints.
    let rendered = format!("{}\n", report::render_analyze_json(&analysis));

    if std::env::var("DS_REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&trace_path, &text).unwrap();
        std::fs::write(&golden_path, &rendered).unwrap();
    }
    let on_disk_trace = std::fs::read_to_string(&trace_path)
        .unwrap_or_else(|e| panic!("fixture trace_small.jsonl unreadable ({e}); see module docs"));
    assert_eq!(
        on_disk_trace, text,
        "committed trace drifted from what this build emits"
    );
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!("fixture trace_small_analyze.json unreadable ({e}); see module docs")
    });
    assert_eq!(
        rendered, golden,
        "analyze --json drifted from the golden fixture"
    );
}

#[test]
fn attribution_tree_sums_exactly_to_the_ledger() {
    let (text, live, run) = traced_run(1);
    let parsed = TraceAnalysis::from_trace(&text).unwrap();

    // Every usage event lands on exactly one tree node, so the subtree
    // cost equals the run's nano-USD ledger — integer equality, no
    // rounding, for both the parsed and the live-built tree.
    let ledger = run.ledger.total_cost_nanousd();
    assert!(ledger > 0, "run billed nothing; test is vacuous");
    assert_eq!(parsed.root.subtree_cost_nanousd(), ledger);
    assert_eq!(parsed.total_cost_nanousd(), ledger);
    assert_eq!(live.root.subtree_cost_nanousd(), ledger);
    assert_eq!(
        parsed.root.subtree_calls(),
        parsed.models.values().map(|m| m.calls).sum::<u64>()
    );

    // The live sink and the post-hoc parse agree on everything.
    assert_eq!(live, parsed);
}

#[test]
fn trace_diff_is_empty_across_thread_counts() {
    let (t1, _, r1) = traced_run(1);
    let (t2, _, r2) = traced_run(2);
    let (t8, _, r8) = traced_run(8);
    assert_eq!(r1.digest(), r2.digest());
    assert_eq!(r1.digest(), r8.digest());

    let a1 = TraceAnalysis::from_trace(&t1).unwrap();
    let a2 = TraceAnalysis::from_trace(&t2).unwrap();
    let a8 = TraceAnalysis::from_trace(&t8).unwrap();
    assert_eq!(a1.structural_digest, a2.structural_digest);
    assert_eq!(a1.structural_digest, a8.structural_digest);
    assert_eq!(
        report::diff(&a1, &a2, false),
        vec![],
        "1-thread vs 2-thread trace diff must be empty"
    );
    assert_eq!(
        report::diff(&a1, &a8, false),
        vec![],
        "1-thread vs 8-thread trace diff must be empty"
    );

    // The timing-free renderings are byte-identical across thread counts
    // (the ManualClock makes even durations equal here, but diff and
    // flame would already agree on structure alone).
    assert_eq!(report::folded_stacks(&a1), report::folded_stacks(&a8));
    assert_eq!(
        report::render_analyze_json(&a1),
        report::render_analyze_json(&a8)
    );
}

#[test]
fn shared_observer_fan_in_preserves_counter_totals_exactly() {
    // Emit counter deltas from exec-pool worker threads through clones of
    // one SharedObserver — the fan-in path the cache/retry middleware
    // uses — and require exact totals: no lost updates, no double counts.
    let metrics = MetricsRecorder::new();
    let mut tracer = Tracer::new(Box::new(ManualClock::new(1)));
    tracer.add_sink(Box::new(metrics.clone()));
    let mut shared = SharedObserver::new(tracer);

    let pool = Pool::new(8);
    let jobs = 512usize;
    pool.try_run(jobs, |i| {
        let mut obs = shared.clone();
        obs.on_event(&Event::Counter {
            counter: Counter::CacheHit,
            delta: 1,
        });
        obs.on_event(&Event::Counter {
            counter: Counter::Retry,
            delta: (i % 3) as u64,
        });
    })
    .unwrap();
    shared.finish().unwrap();

    let snap = metrics.snapshot();
    assert_eq!(snap.counters["cache_hit"], jobs as u64);
    let expected_retries: u64 = (0..jobs).map(|i| (i % 3) as u64).sum();
    assert_eq!(snap.counters["retry"], expected_retries);
    assert_eq!(snap.events, 2 * jobs as u64);
}

#[test]
fn concurrent_middleware_runs_keep_cache_retry_counters_exact() {
    // Same-seed runs with cache+retry middleware at 1 and 8 threads must
    // agree on every counter total — middleware events fan into the
    // shared trace identically regardless of the worker pool.
    let snap_at = |threads: usize| {
        let d = dataset();
        let metrics = MetricsRecorder::new();
        let mut tracer = Tracer::new(Box::new(ManualClock::new(100)));
        tracer.add_sink(Box::new(metrics.clone()));
        let shared = SharedObserver::new(tracer);
        let sim = SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 7)
            .with_pool(Pool::new(threads));
        let retry = RetryModel::new(sim, 2).with_observer(shared.clone());
        let mut llm = CachedModel::new(retry).with_observer(shared.clone());
        let mut obs = shared.clone();
        DataSculpt::new(&d, config(threads))
            .run_observed(&mut llm, &mut obs)
            .unwrap();
        obs.finish().unwrap();
        metrics.snapshot()
    };
    let serial = snap_at(1);
    let parallel = snap_at(8);
    assert_eq!(serial.counters, parallel.counters);
    assert!(serial.counters.contains_key("cache_miss"));
    assert_eq!(serial.total_cost_nanousd(), parallel.total_cost_nanousd());
    assert_eq!(serial.events, parallel.events);
}
