//! Ablation-shape tests: the qualitative findings of Tables 3–5 must hold
//! on down-scaled data (single seed, so thresholds are generous).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::prelude::*;

fn run(
    dataset: &TextDataset,
    model: ModelId,
    mutate: impl FnOnce(&mut DataSculptConfig),
) -> (LfSet, UsageLedger) {
    let mut llm = SimulatedLlm::new(model, dataset.generative.clone(), 31);
    let mut config = DataSculptConfig::sc(8);
    config.num_queries = 30;
    mutate(&mut config);
    let r = DataSculpt::new(dataset, config)
        .run(&mut llm)
        .expect("the simulated model does not fail");
    (r.lf_set, r.ledger)
}

fn lf_accuracy(dataset: &TextDataset, set: &LfSet) -> f64 {
    let labels = dataset.train.labels_opt();
    datasculpt::core::eval::lf_stats_from_matrix(set.train_matrix(), Some(&labels))
        .lf_accuracy
        .expect("labels available")
}

#[test]
fn table3_gpt4_beats_small_llama_on_lf_accuracy() {
    let d = DatasetName::Imdb.load_scaled(41, 0.05);
    let (gpt4, _) = run(&d, ModelId::Gpt4, |_| {});
    let (llama7, _) = run(&d, ModelId::Llama2Chat7b, |c| {
        // Without the accuracy filter the raw model-quality gap shows.
        c.filters = FilterConfig::without_accuracy();
    });
    let (gpt4_raw, _) = run(&d, ModelId::Gpt4, |c| {
        c.filters = FilterConfig::without_accuracy();
    });
    assert!(
        lf_accuracy(&d, &gpt4_raw) > lf_accuracy(&d, &llama7),
        "gpt4 {} vs llama7 {}",
        lf_accuracy(&d, &gpt4_raw),
        lf_accuracy(&d, &llama7)
    );
    assert!(!gpt4.is_empty());
}

#[test]
fn table3_gpt4_costs_more_per_token_than_llama() {
    let d = DatasetName::Youtube.load_scaled(41, 0.1);
    let (_, gpt4_ledger) = run(&d, ModelId::Gpt4, |_| {});
    let (_, llama_ledger) = run(&d, ModelId::Llama2Chat70b, |_| {});
    let per_token = |l: &UsageLedger| l.total_cost_usd() / l.total_usage().total() as f64;
    assert!(per_token(&gpt4_ledger) > 10.0 * per_token(&llama_ledger));
}

#[test]
fn table4_seu_yields_smaller_lf_sets_than_random() {
    let d = DatasetName::Youtube.load_scaled(43, 0.15);
    let (random, _) = run(&d, ModelId::Gpt35Turbo, |c| c.sampler = SamplerKind::Random);
    let (seu, _) = run(&d, ModelId::Gpt35Turbo, |c| c.sampler = SamplerKind::Seu);
    // SEU keeps selecting similar high-utility instances, so more of its
    // candidates are duplicates/redundant (Table 4, #LFs row).
    assert!(
        seu.len() < random.len(),
        "seu {} vs random {}",
        seu.len(),
        random.len()
    );
}

#[test]
fn table5_dropping_filters_grows_the_set() {
    let d = DatasetName::Yelp.load_scaled(47, 0.04);
    let (all, _) = run(&d, ModelId::Gpt35Turbo, |_| {});
    let (no_acc, _) = run(&d, ModelId::Gpt35Turbo, |c| {
        c.filters = FilterConfig::without_accuracy();
    });
    let (no_red, _) = run(&d, ModelId::Gpt35Turbo, |c| {
        c.filters = FilterConfig::without_redundancy();
    });
    assert!(
        no_acc.len() >= all.len(),
        "no_acc {} vs all {}",
        no_acc.len(),
        all.len()
    );
    assert!(
        no_red.len() >= all.len(),
        "no_red {} vs all {}",
        no_red.len(),
        all.len()
    );
}

#[test]
fn table5_accuracy_filter_protects_lf_quality() {
    let d = DatasetName::Yelp.load_scaled(47, 0.04);
    // A weak model makes the filter's effect visible.
    let (all, _) = run(&d, ModelId::Llama2Chat13b, |_| {});
    let (no_acc, _) = run(&d, ModelId::Llama2Chat13b, |c| {
        c.filters = FilterConfig::without_accuracy();
    });
    assert!(
        lf_accuracy(&d, &all) > lf_accuracy(&d, &no_acc),
        "all {} vs no_acc {}",
        lf_accuracy(&d, &all),
        lf_accuracy(&d, &no_acc)
    );
}

#[test]
fn sc_increases_completion_cost_roughly_tenfold() {
    let d = DatasetName::Youtube.load_scaled(49, 0.1);
    let (_, base_ledger) = run(&d, ModelId::Gpt35Turbo, |c| {
        c.samples_per_query = 1;
    });
    let (_, sc_ledger) = run(&d, ModelId::Gpt35Turbo, |c| {
        c.samples_per_query = 10;
    });
    let ratio = sc_ledger.total_usage().completion_tokens as f64
        / base_ledger.total_usage().completion_tokens as f64;
    assert!((5.0..20.0).contains(&ratio), "completion ratio {ratio}");
    // Prompt tokens are unchanged by self-consistency.
    assert_eq!(
        sc_ledger.total_usage().prompt_tokens,
        base_ledger.total_usage().prompt_tokens
    );
}
