//! CLI flag validation: conflicting flags, dependent flags missing their
//! parent, unknown flags, and unparseable values must all be usage errors
//! (exit 2) — never silently ignored with a default.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::process::{Command, Output};

fn cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_datasculpt"))
        .args(args)
        .output()
        .expect("spawn datasculpt")
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn assert_usage_error(args: &[&str], needle: &str) {
    let out = cli(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "expected usage error (exit 2) for {args:?}; stderr: {}",
        stderr_of(&out)
    );
    let err = stderr_of(&out);
    assert!(err.contains("usage error"), "{args:?}: {err}");
    assert!(
        err.contains(needle),
        "{args:?} stderr missing {needle:?}: {err}"
    );
}

#[test]
fn store_and_resume_together_is_a_usage_error() {
    assert_usage_error(
        &["run", "youtube", "--store", "a", "--resume", "b"],
        "mutually exclusive",
    );
}

#[test]
fn checkpoint_every_requires_a_durable_dir() {
    assert_usage_error(
        &["run", "youtube", "--checkpoint-every", "2"],
        "--checkpoint-every requires",
    );
}

#[test]
fn inject_crash_after_requires_a_durable_dir() {
    assert_usage_error(
        &["run", "youtube", "--inject-crash-after", "1"],
        "--inject-crash-after requires",
    );
}

#[test]
fn unknown_flags_are_rejected_not_ignored() {
    assert_usage_error(&["run", "youtube", "--bogus", "3"], "unknown flag --bogus");
    assert_usage_error(&["inspect", "youtube", "--sneaky"], "unknown flag --sneaky");
    assert_usage_error(
        &["baseline", "youtube", "--system", "wrench", "--store", "d"],
        "unknown flag --store",
    );
}

#[test]
fn unparseable_numeric_values_are_rejected() {
    assert_usage_error(
        &["run", "youtube", "--seed", "nope"],
        "unparseable value 'nope'",
    );
    assert_usage_error(&["run", "youtube", "--queries", "many"], "--queries");
    assert_usage_error(
        &["inspect", "youtube", "--scale", "wide"],
        "unparseable value 'wide'",
    );
}

#[test]
fn value_flag_without_a_value_is_rejected() {
    assert_usage_error(&["run", "youtube", "--seed"], "expects a value");
    assert_usage_error(
        &["run", "youtube", "--seed", "--verbose"],
        "expects a value",
    );
}

#[test]
fn out_of_range_scale_is_rejected() {
    assert_usage_error(&["run", "youtube", "--scale", "0"], "out of range");
    assert_usage_error(&["inspect", "youtube", "--scale", "1.5"], "out of range");
}

#[test]
fn unknown_enum_values_are_rejected() {
    assert_usage_error(
        &["run", "youtube", "--config", "mega"],
        "unknown config 'mega'",
    );
    assert_usage_error(
        &["run", "youtube", "--sampler", "psychic"],
        "unknown sampler",
    );
    assert_usage_error(
        &["run", "youtube", "--model", "gpt-99"],
        "unknown model 'gpt-99'",
    );
}

#[test]
fn serve_subcommands_validate_their_flags() {
    assert_usage_error(&["serve", "start", "--socket", "s.sock"], "--state");
    assert_usage_error(&["serve", "start", "--state", "d"], "--socket");
    assert_usage_error(
        &["serve", "start", "--socket", "tcp:notaport", "--state", "d"],
        "unparseable TCP port",
    );
    assert_usage_error(&["serve", "submit", "youtube", "--socket", "s"], "--tenant");
    assert_usage_error(
        &["serve", "submit", "--socket", "s", "--tenant", "acme"],
        "dataset name",
    );
    assert_usage_error(
        &[
            "serve", "submit", "youtube", "--socket", "s", "--tenant", "a", "--budget", "lots",
        ],
        "--budget",
    );
    assert_usage_error(&["serve", "cancel", "--socket", "s"], "--job");
    assert_usage_error(&["serve", "frobnicate"], "unknown serve subcommand");
}

#[test]
fn a_valid_run_still_succeeds() {
    let out = cli(&[
        "run",
        "youtube",
        "--scale",
        "0.05",
        "--queries",
        "2",
        "--seed",
        "13",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("run digest:"), "{stdout}");
}
