//! The durable-run contract, proven by crash injection: a run killed at
//! *any* backend call can be resumed in the same directory and produce a
//! bit-identical `RunResult` — same digest, same ledger, same trace — with
//! zero nano-USD re-billed for any response the dead process had already
//! paid for.
//!
//! Format and determinism contract: `docs/persistence.md`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::obs::Record;
use datasculpt::prelude::*;
use datasculpt::store::tear_tail;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

/// A fresh per-test directory (`run_durable` creates it on first use).
fn tempdir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ds_durable_{}_{tag}_{}",
        std::process::id(),
        NEXT_DIR.fetch_add(1, Ordering::Relaxed)
    ))
}

fn dataset() -> TextDataset {
    DatasetName::Youtube.load_scaled(21, 0.1)
}

fn config() -> DataSculptConfig {
    let mut cfg = DataSculptConfig::cot(9);
    cfg.num_queries = 8;
    cfg
}

fn fingerprint() -> RunFingerprint {
    RunFingerprint {
        dataset: "youtube".into(),
        dataset_seed: 21,
        scale_bits: 0.1f64.to_bits(),
        model: ModelId::Gpt35Turbo.api_name().into(),
        llm_seed: 13,
        config: config(),
    }
}

fn backend(d: &TextDataset) -> SimulatedLlm {
    SimulatedLlm::new(ModelId::Gpt35Turbo, d.generative.clone(), 13)
}

/// Exact nano-USD the dead process paid for: the cost of every response it
/// persisted. (Each stored response was billed exactly once, when it was
/// first answered.)
fn stored_cost_nanousd(dir: &std::path::Path) -> u128 {
    let store = ResponseStore::open(&dir.join("responses.log")).unwrap();
    store
        .iter()
        .map(|(_, r)| {
            PricingTable::cost_nanousd(r.model, r.usage.prompt_tokens, r.usage.completion_tokens)
        })
        .sum()
}

/// Kill the run after every possible number of backend calls (0 = before
/// the first response is stored, total-1 = mid final iteration), resume,
/// and require bit-identical results and exact billing arithmetic.
#[test]
fn killed_at_every_backend_call_a_run_resumes_bit_identically() {
    let d = dataset();
    let fp = fingerprint();

    let dir = tempdir("baseline");
    let baseline =
        run_durable(&d, &fp, backend(&d), &dir, &DurableOptions::default(), None).unwrap();
    let total_calls = baseline.store_stats.misses;
    assert!(total_calls >= 4, "config too small to exercise kill points");
    std::fs::remove_dir_all(&dir).ok();

    for kill_at in 0..total_calls {
        let dir = tempdir("kill");
        let doomed = KillAfter::new(backend(&d), kill_at, KillSwitch::new());
        let switch = doomed.switch();
        // The doomed run either aborts (enough failures left to trip the
        // consecutive-failure limit) or limps to completion with failed
        // iterations; either way the disk state is exactly what a SIGKILL
        // at call `kill_at` would have left, because the tripped switch
        // stops the checkpointer from writing.
        let _ = run_durable(
            &d,
            &fp,
            doomed,
            &dir,
            &DurableOptions {
                kill: Some(switch.clone()),
                ..DurableOptions::default()
            },
            None,
        );
        assert!(switch.is_dead(), "kill point {kill_at} never tripped");

        let crashed_paid = stored_cost_nanousd(&dir);
        let resumed = run_durable(
            &d,
            &fp,
            backend(&d),
            &dir,
            &DurableOptions {
                require_existing: true,
                ..DurableOptions::default()
            },
            None,
        )
        .unwrap();

        // Bit-identical outcome.
        assert_eq!(
            resumed.result.digest(),
            baseline.result.digest(),
            "digest diverged after kill at call {kill_at}"
        );
        assert_eq!(
            resumed.result.ledger.total_cost_nanousd(),
            baseline.result.ledger.total_cost_nanousd(),
            "ledger diverged after kill at call {kill_at}"
        );
        assert_eq!(
            resumed.result.ledger.calls(),
            baseline.result.ledger.calls()
        );

        // Zero re-billing: every stored response replayed from disk
        // (hits == stored), and the two processes together paid exactly
        // what the uninterrupted run did — nothing billed twice.
        assert_eq!(resumed.store_stats.hits, kill_at, "kill at {kill_at}");
        assert_eq!(resumed.store_stats.misses, total_calls - kill_at);
        assert_eq!(
            crashed_paid + resumed.billed_nanousd,
            baseline.billed_nanousd,
            "billing not partitioned at kill point {kill_at}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Events that must replay identically: the run/iteration/pipeline-stage
/// spans and the usage stream. Store and checkpoint bookkeeping (counter
/// events, `checkpoint`/`restore` spans) legitimately differs between an
/// uninterrupted run and a resume.
fn replay_invariant_events(events: &[Event]) -> Vec<Event> {
    events
        .iter()
        .filter(|e| match e {
            Event::Counter { .. } | Event::Message { .. } => false,
            Event::StageBegin { stage, .. } | Event::StageEnd { stage, .. } => {
                !matches!(stage, Stage::Checkpoint | Stage::Restore)
            }
            _ => true,
        })
        .cloned()
        .collect()
}

#[derive(Clone, Default)]
struct CaptureSink(Arc<Mutex<Vec<Event>>>);

impl TraceSink for CaptureSink {
    fn record(&mut self, record: &Record<'_>) {
        self.0.lock().unwrap().push(record.event.clone());
    }
}

fn observed(events: &CaptureSink) -> SharedObserver {
    let tracer = Tracer::new(Box::new(ManualClock::new(1))).with_sink(Box::new(events.clone()));
    SharedObserver::new(tracer)
}

/// A resumed run's trace is event-for-event identical to the
/// uninterrupted run's, once store/checkpoint bookkeeping is set aside.
#[test]
fn resumed_trace_replays_the_uninterrupted_trace() {
    let d = dataset();
    let fp = fingerprint();

    let baseline_events = CaptureSink::default();
    let dir_a = tempdir("trace_base");
    let baseline = run_durable(
        &d,
        &fp,
        backend(&d),
        &dir_a,
        &DurableOptions::default(),
        Some(observed(&baseline_events)),
    )
    .unwrap();

    let dir_b = tempdir("trace_kill");
    let doomed = KillAfter::new(backend(&d), 3, KillSwitch::new());
    let switch = doomed.switch();
    let crashed = run_durable(
        &d,
        &fp,
        doomed,
        &dir_b,
        &DurableOptions {
            kill: Some(switch),
            ..DurableOptions::default()
        },
        None,
    );
    assert!(matches!(crashed, Err(DurableError::Pipeline(_))));

    let resumed_events = CaptureSink::default();
    let resumed = run_durable(
        &d,
        &fp,
        backend(&d),
        &dir_b,
        &DurableOptions {
            require_existing: true,
            ..DurableOptions::default()
        },
        Some(observed(&resumed_events)),
    )
    .unwrap();
    assert_eq!(resumed.result.digest(), baseline.result.digest());
    assert!(resumed.replayed_iterations > 0, "resume actually replayed");

    let base = replay_invariant_events(&baseline_events.0.lock().unwrap());
    let replay = replay_invariant_events(&resumed_events.0.lock().unwrap());
    assert!(!base.is_empty());
    assert_eq!(base, replay, "replay-invariant event streams diverged");
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

/// Tearing the response log mid-record after the crash (a crash inside
/// `write(2)` itself) still resumes bit-identically: the torn record is
/// truncated away and its response re-billed exactly once.
#[test]
fn torn_response_tail_resumes_bit_identically() {
    let d = dataset();
    let fp = fingerprint();

    let dir_a = tempdir("torn_base");
    let baseline = run_durable(
        &d,
        &fp,
        backend(&d),
        &dir_a,
        &DurableOptions::default(),
        None,
    )
    .unwrap();

    let dir_b = tempdir("torn_kill");
    let doomed = KillAfter::new(backend(&d), 4, KillSwitch::new());
    let switch = doomed.switch();
    let _ = run_durable(
        &d,
        &fp,
        doomed,
        &dir_b,
        &DurableOptions {
            kill: Some(switch),
            ..DurableOptions::default()
        },
        None,
    );

    // Chop into the last stored record, leaving a torn tail.
    let log = dir_b.join("responses.log");
    tear_tail(&log, 5).unwrap();

    let crashed_paid = stored_cost_nanousd(&dir_b); // post-tear survivors
    let resumed = run_durable(
        &d,
        &fp,
        backend(&d),
        &dir_b,
        &DurableOptions {
            require_existing: true,
            ..DurableOptions::default()
        },
        None,
    )
    .unwrap();
    assert_eq!(resumed.result.digest(), baseline.result.digest());
    assert_eq!(
        resumed.result.ledger.total_cost_nanousd(),
        baseline.result.ledger.total_cost_nanousd()
    );
    // The torn record's response was re-billed (once); the survivors were
    // not.
    assert_eq!(
        crashed_paid + resumed.billed_nanousd,
        baseline.billed_nanousd
    );
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

fn counter_total(events: &[Event], want: Counter) -> u64 {
    events
        .iter()
        .filter_map(|e| match e {
            Event::Counter { counter, delta } if *counter == want => Some(*delta),
            _ => None,
        })
        .sum()
}

/// The disk store's observability counters agree exactly with
/// `cache_stats()` on both sides of a crash: one `store_miss` per billed
/// backend call, one `store_hit` per replayed response — never
/// double-counted while the resume replays iterations.
#[test]
fn store_counters_match_cache_stats_across_a_resume() {
    let d = dataset();
    let fp = fingerprint();

    let baseline_events = CaptureSink::default();
    let dir = tempdir("counters");
    let doomed = KillAfter::new(backend(&d), 3, KillSwitch::new());
    let switch = doomed.switch();
    let _ = run_durable(
        &d,
        &fp,
        doomed,
        &dir,
        &DurableOptions {
            kill: Some(switch.clone()),
            ..DurableOptions::default()
        },
        Some(observed(&baseline_events)),
    );
    assert!(switch.is_dead());
    {
        let events = baseline_events.0.lock().unwrap();
        // A miss counts every forwarded attempt — the 3 answered calls
        // plus the failed post-kill attempts that tripped the
        // consecutive-failure limit. Nothing replays on a fresh dir.
        assert!(
            counter_total(&events, Counter::StoreMiss) >= 3,
            "at least the 3 answered calls were misses"
        );
        assert_eq!(counter_total(&events, Counter::StoreHit), 0);
    }

    let resumed_events = CaptureSink::default();
    let resumed = run_durable(
        &d,
        &fp,
        backend(&d),
        &dir,
        &DurableOptions {
            require_existing: true,
            ..DurableOptions::default()
        },
        Some(observed(&resumed_events)),
    )
    .unwrap();

    let events = resumed_events.0.lock().unwrap();
    let hits = counter_total(&events, Counter::StoreHit);
    let misses = counter_total(&events, Counter::StoreMiss);
    // Counter events == cache_stats(), exactly: replaying checkpointed
    // iterations serves each stored response once and counts it once.
    assert_eq!(hits, resumed.store_stats.hits, "store_hit double-counted");
    assert_eq!(
        misses, resumed.store_stats.misses,
        "store_miss double-counted"
    );
    assert_eq!(hits, 3, "every pre-crash response replayed exactly once");
    std::fs::remove_dir_all(&dir).ok();
}

/// A sparser checkpoint cadence changes how much is replayed, never what
/// the run produces.
#[test]
fn sparse_checkpoint_cadence_resumes_bit_identically() {
    let d = dataset();
    let fp = fingerprint();

    let dir_a = tempdir("cadence_base");
    let baseline = run_durable(
        &d,
        &fp,
        backend(&d),
        &dir_a,
        &DurableOptions::default(),
        None,
    )
    .unwrap();

    let every = DurableOptions {
        checkpoint_every: 3,
        ..DurableOptions::default()
    };
    let dir_b = tempdir("cadence_kill");
    let doomed = KillAfter::new(backend(&d), 5, KillSwitch::new());
    let switch = doomed.switch();
    let _ = run_durable(
        &d,
        &fp,
        doomed,
        &dir_b,
        &DurableOptions {
            kill: Some(switch),
            ..every.clone()
        },
        None,
    );

    let resumed = run_durable(
        &d,
        &fp,
        backend(&d),
        &dir_b,
        &DurableOptions {
            require_existing: true,
            ..every
        },
        None,
    )
    .unwrap();
    assert_eq!(resumed.result.digest(), baseline.result.digest());
    // Iterations 0..5 were checkpointed only at iteration 2 (cadence 3,
    // anchored at 0: (iter + 1) % 3 == 0), so exactly one record replays.
    assert_eq!(resumed.replayed_iterations, 1);
    // The full resumed run checkpoints iterations 2 and 5: one was loaded,
    // one written live.
    assert_eq!(resumed.checkpoints_written, 1);
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

/// In-memory `CachedModel` stats surface through `cache_stats()` — and a
/// fully-complete durable directory replays everything for free.
#[test]
fn complete_directory_replays_for_free() {
    let d = dataset();
    let fp = fingerprint();
    let dir = tempdir("free");
    let first = run_durable(&d, &fp, backend(&d), &dir, &DurableOptions::default(), None).unwrap();
    assert!(first.billed_nanousd > 0);

    let again = run_durable(&d, &fp, backend(&d), &dir, &DurableOptions::default(), None).unwrap();
    assert_eq!(again.result.digest(), first.result.digest());
    assert_eq!(again.billed_nanousd, 0, "zero nano-USD re-billed");
    assert_eq!(again.store_stats.misses, 0);
    assert_eq!(again.store_stats.hits, first.store_stats.misses);

    // The in-memory cache reports its stats the same way (satellite of the
    // same contract: middlewares are inspectable).
    let mut cached = CachedModel::new(backend(&d));
    let request = ChatRequest::new(vec![datasculpt::llm::ChatMessage::user("hi")]);
    cached.complete(&request).unwrap();
    cached.complete(&request).unwrap();
    assert_eq!(cached.cache_stats().hits, 1);
    assert_eq!(cached.cache_stats().misses, 1);
    std::fs::remove_dir_all(&dir).ok();
}
