//! End-to-end observability contract: attaching the full observer stack
//! (tracer + JSONL sink + metrics, on a deterministic clock) must leave a
//! run digest-identical to an unobserved same-seed run, and the emitted
//! trace must pass the schema validator with every pipeline stage, cache
//! counter, and usage event present.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::prelude::*;

fn config() -> DataSculptConfig {
    let mut config = DataSculptConfig::base(7);
    config.num_queries = 6;
    config.revise_rejected = true;
    config
}

fn dataset() -> TextDataset {
    DatasetName::Youtube.load_scaled(7, 0.05)
}

fn model_stack(d: &TextDataset) -> CachedModel<SimulatedLlm> {
    CachedModel::new(SimulatedLlm::new(
        ModelId::Gpt35Turbo,
        d.generative.clone(),
        7,
    ))
}

#[test]
fn observed_run_is_digest_identical_and_trace_validates() {
    let d = dataset();

    // Reference: same seed, same model stack, no observer attached.
    let mut llm = model_stack(&d);
    let unobserved = DataSculpt::new(&d, config()).run(&mut llm).unwrap();

    // Observed: JSONL file sink + metrics recorder on a manual clock,
    // shared between the pipeline and the cache middleware.
    let path = std::env::temp_dir().join("ds_observability_trace.jsonl");
    let metrics = MetricsRecorder::new();
    let mut tracer = Tracer::new(Box::new(ManualClock::new(100)));
    tracer.add_sink(Box::new(JsonlTraceSink::to_file(&path).unwrap()));
    tracer.add_sink(Box::new(metrics.clone()));
    let shared = SharedObserver::new(tracer);
    let mut llm = model_stack(&d).with_observer(shared.clone());
    let mut obs = shared.clone();
    let observed = DataSculpt::new(&d, config())
        .run_observed(&mut llm, &mut obs)
        .unwrap();
    obs.finish().unwrap();

    // Observation never perturbs the run.
    assert_eq!(observed.digest(), unobserved.digest());
    assert_eq!(
        observed.ledger.total_cost_nanousd(),
        unobserved.ledger.total_cost_nanousd()
    );

    // The trace validates and covers the whole pipeline.
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let summary = datasculpt::obs::schema::validate_trace(&text).unwrap();
    assert_eq!(summary.iterations, 6);
    for stage in ["select", "prompt", "generate", "integrate", "revise"] {
        assert!(
            summary.stages.iter().any(|s| s == stage),
            "stage {stage} missing from {:?}",
            summary.stages
        );
    }
    assert!(summary.kinds["usage"] > 0, "usage events missing");
    assert!(
        summary.counters.contains_key("cache_miss"),
        "cache counters missing: {:?}",
        summary.counters
    );
    assert!(summary.counters["lf_accepted"] > 0);

    // The metrics aggregate mirrors the run's exact ledger.
    let snap = metrics.snapshot();
    assert_eq!(
        snap.total_cost_nanousd(),
        observed.ledger.total_cost_nanousd()
    );
    assert_eq!(summary.cost_nanousd, observed.ledger.total_cost_nanousd());
    assert_eq!(snap.iterations, 6);
}

#[test]
fn cache_hits_reach_the_trace_and_match_cache_stats() {
    let d = dataset();
    let metrics = MetricsRecorder::new();
    let mut tracer = Tracer::new(Box::new(ManualClock::new(1)));
    tracer.add_sink(Box::new(metrics.clone()));
    let shared = SharedObserver::new(tracer);
    let mut llm = model_stack(&d).with_observer(shared.clone());
    let mut obs = shared.clone();

    // Re-issuing the identical request set forces cache hits.
    let request = ChatRequest::new(vec![]).with_temperature(0.0);
    for _ in 0..3 {
        llm.complete(&request).unwrap();
    }
    drop(obs.finish());

    let stats: CacheStats = llm.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 2);
    let snap = metrics.snapshot();
    assert_eq!(snap.counters["cache_miss"], stats.misses);
    assert_eq!(snap.counters["cache_hit"], stats.hits);
}
