//! End-to-end coverage of the evaluation-stack variants: label-model
//! choices, target/weight knobs, feature orders, and the LF-revision
//! extension.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::core::eval::evaluate_matrix;
use datasculpt::prelude::*;

fn fixture() -> (TextDataset, LfSet) {
    let dataset = DatasetName::Youtube.load_scaled(19, 0.2);
    let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, dataset.generative.clone(), 23);
    let mut config = DataSculptConfig::sc(2);
    config.num_queries = 25;
    let run = DataSculpt::new(&dataset, config)
        .run(&mut llm)
        .expect("the simulated model does not fail");
    (dataset, run.lf_set)
}

#[test]
fn every_label_model_kind_produces_valid_metrics() {
    let (dataset, lf_set) = fixture();
    let matrix = lf_set.train_matrix();
    for kind in [
        LabelModelKind::Metal(MetalConfig::default()),
        LabelModelKind::Majority,
        LabelModelKind::Triplet,
    ] {
        let cfg = EvalConfig {
            label_model: kind,
            ..EvalConfig::default()
        };
        let eval = evaluate_matrix(&dataset, matrix, &cfg);
        assert!(
            (0.0..=1.0).contains(&eval.end_metric),
            "{kind:?}: {}",
            eval.end_metric
        );
        // On a healthy LF set all aggregators should clearly beat chance.
        assert!(eval.end_metric > 0.6, "{kind:?}: {}", eval.end_metric);
    }
}

#[test]
fn metal_beats_or_matches_majority_vote_end_to_end() {
    let (dataset, lf_set) = fixture();
    let matrix = lf_set.train_matrix();
    let run = |kind| {
        evaluate_matrix(
            &dataset,
            matrix,
            &EvalConfig {
                label_model: kind,
                ..EvalConfig::default()
            },
        )
        .end_metric
    };
    let metal = run(LabelModelKind::Metal(MetalConfig::default()));
    let mv = run(LabelModelKind::Majority);
    assert!(
        metal >= mv - 0.05,
        "accuracy weighting should not lose badly: metal {metal} vs mv {mv}"
    );
}

#[test]
fn target_and_weight_knobs_run() {
    let (dataset, lf_set) = fixture();
    let matrix = lf_set.train_matrix();
    for (hard, balanced) in [(true, true), (true, false), (false, true), (false, false)] {
        let cfg = EvalConfig {
            hard_targets: hard,
            balanced_weights: balanced,
            ..EvalConfig::default()
        };
        let eval = evaluate_matrix(&dataset, matrix, &cfg);
        assert!(
            eval.end_metric > 0.55,
            "hard={hard} balanced={balanced}: {}",
            eval.end_metric
        );
    }
}

#[test]
fn mlp_end_model_is_supported() {
    let (dataset, lf_set) = fixture();
    let cfg = EvalConfig {
        end_model: EndModelKind::Mlp { hidden: 32 },
        ..EvalConfig::default()
    };
    let eval = evaluate_lf_set(&dataset, &lf_set, &cfg);
    assert!(
        eval.end_metric > 0.55,
        "MLP end model should beat chance: {}",
        eval.end_metric
    );
}

#[test]
fn feature_order_two_is_supported() {
    let (dataset, lf_set) = fixture();
    let cfg = EvalConfig {
        feature_order: 2,
        ..EvalConfig::default()
    };
    let eval = evaluate_lf_set(&dataset, &lf_set, &cfg);
    assert!((0.0..=1.0).contains(&eval.end_metric));
}

#[test]
fn metal_config_guards_are_exercised() {
    let (dataset, lf_set) = fixture();
    let matrix = lf_set.train_matrix();
    // Turning each guard off must still yield valid (if possibly worse)
    // results — the ablation bench depends on this.
    for mutate in [
        |m: &mut MetalConfig| m.accuracy_tilt = 1.0,
        |m: &mut MetalConfig| m.abstain_evidence_scale = 1.0,
        |m: &mut MetalConfig| m.update_damping = 1.0,
        |m: &mut MetalConfig| m.smooth_strength = 0.5,
    ] {
        let mut mc = MetalConfig::default();
        mutate(&mut mc);
        let eval = evaluate_matrix(
            &dataset,
            matrix,
            &EvalConfig {
                label_model: LabelModelKind::Metal(mc),
                ..EvalConfig::default()
            },
        );
        assert!((0.0..=1.0).contains(&eval.end_metric));
    }
}

#[test]
fn revision_extension_full_pipeline() {
    let dataset = DatasetName::Yelp.load_scaled(31, 0.03);
    let mut llm = SimulatedLlm::new(ModelId::Llama2Chat70b, dataset.generative.clone(), 11);
    let mut config = DataSculptConfig::cot(6);
    config.num_queries = 15;
    config.revise_rejected = true;
    let run = DataSculpt::new(&dataset, config)
        .run(&mut llm)
        .expect("the simulated model does not fail");
    let eval = evaluate_lf_set(&dataset, &run.lf_set, &EvalConfig::default());
    assert!((0.0..=1.0).contains(&eval.end_metric));
    assert!(!run.lf_set.is_empty());
}
