//! Tier-1: the multi-tenant labeling service (`datasculpt-serve`).
//!
//! Three contracts from `docs/serving.md` are pinned here:
//!
//! 1. **Exact cost partition** — with N concurrent jobs over the scripted
//!    simulated backend, the per-job ledgers, the per-tenant ledgers, the
//!    global ledger, and the budget book's committed spend all agree to
//!    the exact nano-USD, and job digests are independent of `slots`.
//! 2. **Admission control** — a job whose tenant has zero remaining
//!    budget is rejected at admission (never runs, never bills); a job
//!    that exhausts its budget mid-run pauses and resumes to the same
//!    digest once the tenant is topped up.
//! 3. **Crash resume** — killing the daemon mid-round and reopening the
//!    same state dir re-queues every in-flight job and finishes all of
//!    them bit-identically to an uninterrupted service, with the same
//!    exact per-tenant cost partition.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT: AtomicU64 = AtomicU64::new(0);

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ds_serve_t1_{tag}_{}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("tempdir");
    dir
}

fn request(tenant: &str, seed: u64, queries: u64, budget: u128) -> JobRequest {
    JobRequest {
        tenant: tenant.to_string(),
        dataset: "youtube".to_string(),
        config: "base".to_string(),
        model: "gpt-3.5".to_string(),
        seed,
        scale_bits: 0.05f64.to_bits(),
        queries,
        budget_nanousd: budget,
    }
}

/// Plenty for any scaled-down job in this file.
const AMPLE: u128 = 1_000_000_000_000; // $1000

/// The standard three-tenant workload used by several tests.
fn workload() -> Vec<JobRequest> {
    vec![
        request("acme", 11, 3, AMPLE),
        request("acme", 12, 2, AMPLE),
        request("globex", 21, 3, AMPLE),
        request("globex", 22, 2, AMPLE),
        request("initech", 31, 2, AMPLE),
    ]
}

fn run_workload(dir: &Path, slots: usize) -> Service {
    let mut service = Service::open(
        dir,
        ServeConfig {
            slots,
            checkpoint_every: 1,
        },
    )
    .expect("open service");
    for req in workload() {
        service.submit(req).expect("submit");
    }
    service.drain().expect("drain");
    service
}

#[test]
fn concurrent_jobs_partition_cost_exactly() {
    let dir = tempdir("partition");
    let service = run_workload(&dir.join("state"), 4);

    let jobs: Vec<JobStatus> = service.jobs().cloned().collect();
    assert_eq!(jobs.len(), 5);
    for job in &jobs {
        assert_eq!(job.state, JobState::Completed, "{job:?}");
        assert!(job.cost_nanousd > 0, "a completed job billed something");
        // The recorded cost figure is exactly the job ledger's total.
        let ledger = service.job_ledger(job.spec.id).expect("job ledger");
        assert_eq!(job.cost_nanousd, ledger.total_cost_nanousd());
    }

    // Per-job == per-tenant == global, to the exact nano-USD and token.
    let global = service.global_ledger();
    let by_job: u128 = jobs.iter().map(|j| j.cost_nanousd).sum();
    let tenant_ledgers = service.tenant_ledgers();
    let by_tenant: u128 = tenant_ledgers
        .values()
        .map(|l| l.total_cost_nanousd())
        .sum();
    assert_eq!(by_job, global.total_cost_nanousd());
    assert_eq!(by_tenant, global.total_cost_nanousd());
    let tokens_by_tenant: u64 = tenant_ledgers
        .values()
        .map(|l| l.total_usage().total())
        .sum();
    assert_eq!(tokens_by_tenant, global.total_usage().total());

    // The budget book took the same figures through its own path (the
    // iteration gate), not through the ledgers.
    for tenant in service.tenants() {
        let spent = service.tenant_account(&tenant).spent_nanousd();
        let ledger_total = tenant_ledgers
            .get(&tenant)
            .map(|l| l.total_cost_nanousd())
            .unwrap_or(0);
        assert_eq!(spent, ledger_total, "book vs ledger for '{tenant}'");
    }

    // Scheduling is invisible in the results: one slot, same digests.
    let serial = run_workload(&dir.join("serial"), 1);
    for job in &jobs {
        let twin = serial.status(job.spec.id).expect("serial twin");
        assert_eq!(job.digest, twin.digest, "job {} digest", job.spec.id);
        assert_eq!(job.cost_nanousd, twin.cost_nanousd);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn zero_budget_job_is_rejected_at_admission() {
    let dir = tempdir("reject");
    let mut service = Service::open(&dir.join("state"), ServeConfig::default()).expect("open");
    service
        .submit(request("freeloader", 1, 2, 0))
        .expect("submit");
    let report = service.drain().expect("drain");
    assert_eq!(report.rejected, 1, "{report:?}");
    assert_eq!(report.completed, 0, "{report:?}");
    let job = service.status(1).expect("job 1");
    assert_eq!(job.state, JobState::Rejected);
    assert_eq!(job.cost_nanousd, 0, "a rejected job never bills");
    assert_eq!(job.iterations, 0);
    assert_eq!(service.tenant_account("freeloader").spent_nanousd(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn paused_job_resumes_bit_identically_after_top_up() {
    // Baseline: the same spec under an ample budget, uninterrupted.
    let dir = tempdir("pause");
    let mut baseline = Service::open(&dir.join("baseline"), ServeConfig::default()).expect("open");
    baseline
        .submit(request("shoestring", 7, 3, AMPLE))
        .expect("submit");
    baseline.drain().expect("drain");
    let want = baseline.status(1).expect("baseline job").clone();
    assert_eq!(want.state, JobState::Completed);

    // A 1000-nano-USD budget admits the fresh job (remaining > 0) but
    // cannot cover even one iteration: the gate pauses it at the first
    // checkpoint.
    let mut service = Service::open(&dir.join("state"), ServeConfig::default()).expect("open");
    service
        .submit(request("shoestring", 7, 3, 1_000))
        .expect("submit");
    service.drain().expect("drain");
    let paused = service.status(1).expect("job 1").clone();
    assert_eq!(paused.state, JobState::Paused, "{paused:?}");
    assert!(paused.iterations >= 1, "paused after a real iteration");

    // Topping the tenant up (here: via a second submit) resumes it from
    // its durable checkpoints to the exact baseline digest and cost.
    service
        .submit(request("shoestring", 8, 2, AMPLE))
        .expect("top-up submit");
    service.drain().expect("drain after top-up");
    let resumed = service.status(1).expect("job 1").clone();
    assert_eq!(resumed.state, JobState::Completed, "{resumed:?}");
    assert_eq!(resumed.digest, want.digest, "pause/resume is invisible");
    assert_eq!(resumed.cost_nanousd, want.cost_nanousd, "no re-billing");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_daemon_resumes_all_jobs_bit_identically() {
    let dir = tempdir("crash");

    // Uninterrupted baseline for the whole workload.
    let baseline = run_workload(&dir.join("baseline"), 4);
    let want: Vec<JobStatus> = baseline.jobs().cloned().collect();

    // The doomed service: every backend shares one kill switch, and each
    // job's model dies after 1 live call — mid-run for every job in the
    // workload. The service holds the same switch, so once it trips, no
    // post-kill state reaches disk (exactly a SIGKILL's view).
    let kill = KillSwitch::new();
    let factory_kill = kill.clone();
    let mut doomed = Service::open(
        &dir.join("state"),
        ServeConfig {
            slots: 4,
            checkpoint_every: 1,
        },
    )
    .expect("open")
    .with_kill_switch(kill.clone())
    .with_backend_factory(Arc::new(move |spec: &JobSpec, dataset: &TextDataset| {
        let sim = SimulatedLlm::new(ModelId::Gpt35Turbo, dataset.generative.clone(), spec.seed);
        Box::new(KillAfter::new(sim, 1, factory_kill.clone()))
    }));
    for req in workload() {
        doomed.submit(req).expect("submit");
    }
    doomed.drain().expect("drain hits the kill switch");
    assert!(kill.is_dead(), "the injected crash actually fired");
    // The doomed service's in-memory states after the trip are an
    // artifact of in-process emulation (a real SIGKILL leaves no
    // in-memory anything): the pipeline tolerates failed LLM calls by
    // marking iterations failed, so post-trip attempts "complete" with
    // junk. None of that reaches disk — the registry and checkpointer
    // drop every write once the switch is dead — so only the reopened
    // view below is meaningful.
    drop(doomed);

    // "Restart the daemon": reopen the same state dir with a healthy
    // backend. Jobs that were mid-run when the switch tripped replay as
    // Running and are re-queued; jobs admitted after the trip left no
    // durable Running record and replay as plain Queued; jobs that
    // finished before the trip keep their durable Completed record —
    // either way, every job must end up finished and bit-identical.
    let mut revived = Service::open(
        &dir.join("state"),
        ServeConfig {
            slots: 2,
            checkpoint_every: 1,
        },
    )
    .expect("reopen");
    assert!(
        revived.recovered_jobs() >= 1,
        "at least one job was mid-flight at the kill"
    );
    assert!(
        revived
            .jobs()
            .all(|j| matches!(j.state, JobState::Queued | JobState::Completed)),
        "nothing Failed durably: the post-kill states never reached disk"
    );
    revived.drain().expect("drain after restart");

    for expected in &want {
        let got = revived.status(expected.spec.id).expect("revived job");
        assert_eq!(got.state, JobState::Completed, "{got:?}");
        assert_eq!(
            got.digest, expected.digest,
            "job {} digest survives the crash",
            expected.spec.id
        );
        assert_eq!(
            got.cost_nanousd, expected.cost_nanousd,
            "job {} cost is exactly the uninterrupted cost",
            expected.spec.id
        );
    }

    // The per-tenant partition is also exactly the baseline's.
    for tenant in baseline.tenants() {
        assert_eq!(
            revived.tenant_account(&tenant).spent_nanousd(),
            baseline.tenant_account(&tenant).spent_nanousd(),
            "tenant '{tenant}' spend after crash-resume"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
