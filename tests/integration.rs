//! End-to-end integration tests: the full DataSculpt pipeline (dataset →
//! sampler → prompt → simulated LLM → parse → filters → label model → end
//! model) on small dataset variants.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::prelude::*;

fn small(name: DatasetName, seed: u64) -> TextDataset {
    name.load_scaled(seed, 0.08)
}

#[test]
fn full_pipeline_youtube_base() {
    // Youtube is already small at full size; 0.5 keeps the validation and
    // test splits large enough for stable thresholds.
    let dataset = DatasetName::Youtube.load_scaled(1, 0.5);
    let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, dataset.generative.clone(), 7);
    let mut config = DataSculptConfig::base(1);
    config.num_queries = 30;
    let run = DataSculpt::new(&dataset, config)
        .run(&mut llm)
        .expect("the simulated model does not fail");

    assert!(
        run.lf_set.len() >= 10,
        "LF set too small: {}",
        run.lf_set.len()
    );
    assert_eq!(run.iterations.len(), 30);
    assert!(run.ledger.total_cost_usd() > 0.0);

    let eval = evaluate_lf_set(&dataset, &run.lf_set, &EvalConfig::default());
    assert!(
        eval.end_metric > 0.6,
        "end model should clearly beat chance: {}",
        eval.end_metric
    );
    let lf_acc = eval.lf_stats.lf_accuracy.expect("train labels available");
    assert!(lf_acc > 0.6, "filtered LFs should be accurate: {lf_acc}");
    assert!(eval.lf_stats.total_coverage > 0.2);
    assert!(eval.lf_stats.lf_coverage < eval.lf_stats.total_coverage);
}

#[test]
fn full_pipeline_every_dataset_runs() {
    for name in DatasetName::ALL {
        let dataset = name.load_scaled(3, 0.03);
        let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, dataset.generative.clone(), 5);
        let mut config = DataSculptConfig::cot(2);
        config.num_queries = 10;
        let run = DataSculpt::new(&dataset, config)
            .run(&mut llm)
            .expect("the simulated model does not fail");
        let eval = evaluate_lf_set(&dataset, &run.lf_set, &EvalConfig::default());
        assert!(
            eval.end_metric >= 0.0 && eval.end_metric <= 1.0,
            "{name}: metric out of range"
        );
        // Spouse must not report train LF accuracy (§4.1).
        if name == DatasetName::Spouse {
            assert!(eval.lf_stats.lf_accuracy.is_none());
            assert_eq!(eval.metric, Metric::F1);
        }
    }
}

#[test]
fn pipeline_is_reproducible_end_to_end() {
    let dataset = small(DatasetName::Imdb, 9);
    let run_once = || {
        let mut llm = SimulatedLlm::new(ModelId::Gpt4, dataset.generative.clone(), 11);
        let mut config = DataSculptConfig::sc(4);
        config.num_queries = 8;
        let run = DataSculpt::new(&dataset, config)
            .run(&mut llm)
            .expect("the simulated model does not fail");
        let eval = evaluate_lf_set(&dataset, &run.lf_set, &EvalConfig::default());
        (run.lf_set.len(), run.ledger.total_usage(), eval.end_metric)
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert!((a.2 - b.2).abs() < 1e-12);
}

#[test]
fn kate_pipeline_annotates_and_runs() {
    let dataset = small(DatasetName::Yelp, 5);
    let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, dataset.generative.clone(), 13);
    let mut config = DataSculptConfig::kate(6);
    config.num_queries = 8;
    config.n_icl = 5;
    let run = DataSculpt::new(&dataset, config)
        .run(&mut llm)
        .expect("the simulated model does not fail");
    // KATE pays extra annotation calls beyond the 8 LF-generation queries.
    assert!(run.ledger.calls() > 8, "calls {}", run.ledger.calls());
    assert!(!run.lf_set.is_empty());
}

#[test]
fn filters_actually_gate_the_pipeline() {
    let dataset = small(DatasetName::Youtube, 21);
    let run_with = |filters: FilterConfig| {
        let mut llm = SimulatedLlm::new(ModelId::Llama2Chat7b, dataset.generative.clone(), 3);
        let mut config = DataSculptConfig::sc(9);
        config.num_queries = 20;
        config.filters = filters;
        DataSculpt::new(&dataset, config)
            .run(&mut llm)
            .expect("the simulated model does not fail")
    };
    let strict = run_with(FilterConfig::all());
    let loose = run_with(FilterConfig::without_accuracy());
    // Dropping the accuracy filter admits more LFs (Table 5, #LF row).
    assert!(
        loose.lf_set.len() >= strict.lf_set.len(),
        "loose {} vs strict {}",
        loose.lf_set.len(),
        strict.lf_set.len()
    );
    // And the admitted extras are of lower quality on average.
    let dataset_labels = dataset.train.labels_opt();
    let stat = |set: &LfSet| {
        datasculpt::core::eval::lf_stats_from_matrix(set.train_matrix(), Some(&dataset_labels))
            .lf_accuracy
            .expect("labels")
    };
    assert!(
        stat(&loose.lf_set) <= stat(&strict.lf_set) + 0.02,
        "accuracy filter should not hurt LF accuracy"
    );
}

#[test]
fn usage_ledger_matches_pricing_table() {
    let dataset = small(DatasetName::Sms, 2);
    let mut llm = SimulatedLlm::new(ModelId::Gpt4, dataset.generative.clone(), 1);
    let mut config = DataSculptConfig::base(1);
    config.num_queries = 5;
    let run = DataSculpt::new(&dataset, config)
        .run(&mut llm)
        .expect("the simulated model does not fail");
    let usage = run.ledger.total_usage();
    let expected =
        PricingTable::cost_usd(ModelId::Gpt4, usage.prompt_tokens, usage.completion_tokens);
    assert!((run.ledger.total_cost_usd() - expected).abs() < 1e-12);
}
