//! Digest pinning across the columnar-refactor boundary.
//!
//! One seeded DataSculpt run per dataset family, with its `RunResult`
//! digest pinned to the value produced by the pre-refactor (row-major,
//! string-keyed) implementation. Any representation change that alters
//! LF selection, the cost ledger, or iteration outcomes shows up here as
//! a digest mismatch.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datasculpt::prelude::*;

/// Run one seeded config and return the run digest.
fn digest_for(dataset: DatasetName, scale: f64, seed: u64, num_queries: usize) -> u64 {
    let data = dataset.load_scaled(0, scale);
    let mut config = DataSculptConfig::base(seed);
    config.num_queries = num_queries;
    let mut llm = SimulatedLlm::new(ModelId::Gpt35Turbo, data.generative.clone(), seed);
    let run = DataSculpt::new(&data, config)
        .run(&mut llm)
        .expect("simulated model does not fail");
    run.digest()
}

#[test]
fn digests_are_pinned_per_dataset_family() {
    // (family representative, scale, seed, queries, pinned digest)
    let cases: &[(DatasetName, f64, u64, usize, u64)] = &[
        (DatasetName::Imdb, 0.2, 7, 8, 0x9b17_d636_2215_9ded),
        (DatasetName::Agnews, 0.02, 7, 8, 0x230f_97af_3a31_979d),
        (DatasetName::Youtube, 0.3, 7, 8, 0xf8bf_80de_6552_4b14),
        (DatasetName::Spouse, 0.3, 7, 8, 0x47e6_e624_0b3f_96ae),
    ];
    let mut drifted = Vec::new();
    for &(name, scale, seed, queries, pinned) in cases {
        let got = digest_for(name, scale, seed, queries);
        println!("GOLDEN {name:?} {got:#018x}");
        if got != pinned {
            drifted.push(format!("{name:?}: got {got:#018x}, pinned {pinned:#018x}"));
        }
    }
    assert!(
        drifted.is_empty(),
        "digests drifted from the pre-refactor pins:\n{}",
        drifted.join("\n")
    );
}
